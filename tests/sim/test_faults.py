"""Tests for declarative fault injection."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import FaultPlan

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestFaultPlanConstruction:
    def test_fluent_building(self):
        plan = (
            FaultPlan()
            .crash("n1", at=0.01)
            .partition({"n0"}, {"n2", "n3"}, at=0.02)
            .heal(at=0.03)
            .recover("n1", at=0.04)
        )
        assert [e.kind for e in plan.events] == [
            "crash", "partition", "heal", "recover",
        ]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().crash("n1", at=-1.0)

    def test_cannot_extend_after_arming(self):
        bed = make_testbed(seed=160)
        plan = FaultPlan().crash("n1", at=0.01).arm(bed)
        with pytest.raises(ConfigurationError):
            plan.crash("n2", at=0.02)

    def test_double_arm_rejected(self):
        bed = make_testbed(seed=161)
        plan = FaultPlan().heal(at=0.01)
        plan.arm(bed)
        with pytest.raises(ConfigurationError):
            plan.arm(bed)


class TestValidation:
    def test_crash_unknown_node_rejected_at_arm(self):
        bed = make_testbed(seed=166)
        plan = FaultPlan().crash("n9", at=0.01)
        with pytest.raises(ConfigurationError, match="unknown node 'n9'"):
            plan.arm(bed)

    def test_recover_unknown_node_rejected_at_arm(self):
        bed = make_testbed(seed=166)
        plan = FaultPlan().recover("nope", at=0.01)
        with pytest.raises(ConfigurationError, match="unknown node"):
            plan.arm(bed)

    def test_partition_unknown_member_rejected_at_arm(self):
        bed = make_testbed(seed=166)
        plan = FaultPlan().partition({"n0", "n1"}, {"n2", "n7"}, at=0.01)
        with pytest.raises(ConfigurationError, match=r"\['n7'\]"):
            plan.arm(bed)

    def test_rejected_plan_schedules_nothing(self):
        bed = make_testbed(seed=166)
        plan = FaultPlan().heal(at=0.01).crash("n9", at=0.02)
        with pytest.raises(ConfigurationError):
            plan.arm(bed)
        bed.run(0.05)
        assert plan.injected == []
        # The plan stays un-armed, so it can be fixed and re-armed.
        assert not plan._armed

    def test_overlapping_partition_components_rejected(self):
        bed = make_testbed(seed=168)
        plan = FaultPlan().partition({"n0", "n1"}, {"n1", "n2"}, at=0.01)
        with pytest.raises(ConfigurationError,
                           match="more than one partition component"):
            plan.arm(bed)

    def test_crash_of_already_crashed_node_rejected(self):
        bed = make_testbed(seed=168)
        plan = FaultPlan().crash("n1", at=0.01).crash("n1", at=0.02)
        with pytest.raises(ConfigurationError, match="already crashed"):
            plan.arm(bed)

    def test_recover_of_never_crashed_node_rejected(self):
        bed = make_testbed(seed=168)
        plan = FaultPlan().recover("n1", at=0.01)
        with pytest.raises(ConfigurationError, match="not crashed"):
            plan.arm(bed)

    def test_crash_recover_crash_cycle_is_legal(self):
        bed = make_testbed(seed=168)
        plan = (FaultPlan()
                .crash("n1", at=0.01)
                .recover("n1", at=0.02)
                .crash("n1", at=0.03))
        plan.arm(bed)  # must not raise
        assert len(plan.events) == 3

    def test_live_only_event_rejected_on_simulated_bed(self):
        bed = make_testbed(seed=168)
        plan = FaultPlan().drop(0.1, at=0.01)
        with pytest.raises(ConfigurationError, match="chaos transport"):
            plan.arm(bed)

    def test_event_on_crashed_node_rejected(self):
        bed = make_testbed(seed=168)
        # Validation-only stand-in for a chaos transport, so the
        # live-only gate admits `isolate` and the crashed-node check runs.
        bed.chaos = object()
        plan = FaultPlan().crash("n1", at=0.01).isolate("n1", at=0.02)
        with pytest.raises(ConfigurationError, match="already crashed"):
            plan.arm(bed)

    def test_drain_requires_a_control_plane(self):
        bed = make_testbed(seed=169)
        plan = FaultPlan().drain("n1", at=0.01)
        with pytest.raises(ConfigurationError, match="control plane"):
            plan.arm(bed)

    def test_join_requires_a_control_plane(self):
        bed = make_testbed(seed=169)
        plan = FaultPlan().join("n1", at=0.01)
        with pytest.raises(ConfigurationError, match="control plane"):
            plan.arm(bed)

    def test_join_after_crash_is_legal(self):
        # A join recovers a crashed node, so later events may target it.
        bed = make_testbed(seed=169)
        bed.control_drain = lambda node_id: True
        bed.control_join = lambda node_id: True
        plan = (FaultPlan()
                .crash("n1", at=0.01)
                .join("n1", at=0.02)
                .crash("n1", at=0.03))
        plan.arm(bed)  # must not raise
        assert len(plan.events) == 3

    def test_rates_must_be_probabilities(self):
        for build in (
            lambda p: p.drop(1.5, at=0.01),
            lambda p: p.drop(-0.1, at=0.01),
            lambda p: p.duplicate(2.0, at=0.01),
            lambda p: p.reorder(-1.0, at=0.01),
        ):
            with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
                build(FaultPlan())
        with pytest.raises(ConfigurationError, match="non-negative"):
            FaultPlan().delay(-0.5, at=0.01)

    def test_absolute_time_in_past_rejected(self):
        bed = make_testbed(seed=167)
        bed.run(0.1)
        plan = FaultPlan().crash("n1", at=0.05)
        with pytest.raises(ConfigurationError, match="in the past"):
            plan.arm(bed, absolute=True)

    def test_absolute_times_fire_at_kernel_time(self):
        bed = make_testbed(seed=167)
        bed.run(0.1)
        fired = []
        plan = FaultPlan().call(lambda: fired.append(bed.sim.now), at=0.15)
        plan.arm(bed, absolute=True)
        bed.run(0.1)
        assert fired == [pytest.approx(0.15)]
        assert plan.done


class TestReproducibility:
    @staticmethod
    def forward():
        return (FaultPlan()
                .drop(0.05, at=1.0)
                .partition({"n0", "n1"}, {"n2"}, at=2.5)
                .heal(at=4.5)
                .crash("n0", at=5.5)
                .recover("n0", at=7.5))

    def test_build_order_does_not_change_the_hash(self):
        shuffled = (FaultPlan()
                    .recover("n0", at=7.5)
                    .heal(at=4.5)
                    .crash("n0", at=5.5)
                    .drop(0.05, at=1.0)
                    .partition({"n0", "n1"}, {"n2"}, at=2.5))
        assert self.forward().schedule_hash() == shuffled.schedule_hash()

    def test_hash_is_stable_across_instances(self):
        assert self.forward().schedule_hash() == self.forward().schedule_hash()

    def test_any_event_change_changes_the_hash(self):
        base = self.forward().schedule_hash()
        later = (FaultPlan()
                 .drop(0.05, at=1.1)
                 .partition({"n0", "n1"}, {"n2"}, at=2.5)
                 .heal(at=4.5)
                 .crash("n0", at=5.5)
                 .recover("n0", at=7.5))
        assert later.schedule_hash() != base

    def test_partition_member_order_is_canonicalized(self):
        a = FaultPlan().partition({"n1", "n0"}, {"n2"}, at=1.0)
        b = FaultPlan().partition({"n0", "n1"}, {"n2"}, at=1.0)
        assert a.schedule_hash() == b.schedule_hash()

    def test_schedule_is_sorted_by_time_stably(self):
        plan = (FaultPlan()
                .heal(at=0.5)
                .crash("n1", at=0.1)
                .partition({"n0"}, {"n1"}, at=0.1))
        assert [e.kind for e in plan.schedule()] == [
            "crash", "partition", "heal"]


class TestInjection:
    def test_crash_injected_at_time(self):
        bed = make_testbed(seed=162)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="local")
        bed.start()
        plan = FaultPlan().crash("n2", at=0.05).arm(bed)
        assert bed.cluster.node("n2").alive
        bed.run(0.1)
        assert not bed.cluster.node("n2").alive
        assert plan.done

    def test_partition_and_heal(self):
        bed = make_testbed(seed=163)
        bed.start()
        plan = (
            FaultPlan()
            .partition({"n0", "n1"}, {"n2", "n3"}, at=0.01)
            .heal(at=0.05)
            .arm(bed)
        )
        bed.run(0.02)
        assert not bed.cluster.network.reachable("n0", "n2")
        bed.run(0.08)
        assert bed.cluster.network.reachable("n0", "n2")
        assert plan.done

    def test_crash_recover_cycle_service_survives(self):
        bed = make_testbed(seed=164)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        before = call_n(bed, client, "svc", "get_time", 3)
        FaultPlan().crash("n3", at=0.01).recover("n3", at=0.5).arm(bed)
        bed.run(1.2)
        after = call_n(bed, client, "svc", "get_time", 3)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_custom_callback(self):
        bed = make_testbed(seed=165)
        fired = []
        FaultPlan().call(lambda: fired.append(bed.sim.now), at=0.02).arm(bed)
        bed.run(0.05)
        assert fired == [pytest.approx(0.02)]

    def test_drain_and_join_dispatch_to_control_hooks(self):
        bed = make_testbed(seed=170)
        calls = []
        bed.control_drain = lambda node_id: calls.append(("drain", node_id))
        bed.control_join = lambda node_id: calls.append(("join", node_id))
        plan = (FaultPlan()
                .drain("n2", at=0.01)
                .join("n2", at=0.03)
                .arm(bed))
        bed.run(0.05)
        assert calls == [("drain", "n2"), ("join", "n2")]
        assert plan.done
