"""Property-based tests for the coordination primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.process import Lock, Signal, Store


class TestStoreProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        script=st.lists(
            st.one_of(
                st.tuples(st.just("put"), st.integers(0, 999)),
                st.tuples(st.just("get"), st.just(0)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_fifo_under_any_schedule(self, script):
        """Whatever the interleaving of puts and (blocking) gets, items
        come out in exactly the order they went in."""
        sim = Simulator()
        store = Store(sim)
        put_order = []
        got = []
        puts = [item for op, item in script if op == "put"]
        gets = sum(1 for op, _ in script if op == "get")
        taken = min(len(puts), gets)

        def consumer(count):
            for _ in range(count):
                item = yield store.get()
                got.append(item)

        sim.process(consumer(taken))
        delay = 0.0
        for op, item in script:
            if op == "put":
                delay += 0.001
                def do_put(value=item):
                    put_order.append(value)
                    store.put(value)
                sim.schedule(delay, do_put)
        sim.run()
        assert got == put_order[:taken]

    @settings(max_examples=30, deadline=None)
    @given(waiters=st.integers(min_value=1, max_value=10))
    def test_getters_served_fifo(self, waiters):
        sim = Simulator()
        store = Store(sim)
        served = []

        def consumer(tag, start):
            yield sim.timeout(start)
            item = yield store.get()
            served.append((tag, item))

        for i in range(waiters):
            sim.process(consumer(i, i * 0.01))
        sim.schedule(1.0, lambda: [store.put(i) for i in range(waiters)])
        sim.run()
        assert served == [(i, i) for i in range(waiters)]


class TestLockProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        holds=st.lists(
            st.floats(min_value=0.001, max_value=0.5), min_size=2, max_size=8
        )
    )
    def test_critical_sections_never_overlap(self, holds):
        sim = Simulator()
        lock = Lock(sim)
        intervals = []

        def worker(duration):
            yield lock.acquire()
            start = sim.now
            yield sim.timeout(duration)
            intervals.append((start, sim.now))
            lock.release()

        for duration in holds:
            sim.process(worker(duration))
        sim.run()
        intervals.sort()
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a


class TestSignalProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=12
        ),
        fire_at=st.floats(min_value=1.0, max_value=2.0),
    )
    def test_exactly_prefire_waiters_wake(self, arrivals, fire_at):
        sim = Simulator()
        signal = Signal(sim)
        woken = []

        def waiter(tag, arrive):
            yield sim.timeout(arrive)
            yield signal.wait()
            woken.append(tag)

        for i, arrive in enumerate(arrivals):
            sim.process(waiter(i, arrive))
        sim.schedule(fire_at, signal.fire)
        sim.run(until=5.0)
        # Everyone arrived before the fire; all must be woken, once.
        assert sorted(woken) == list(range(len(arrivals)))
