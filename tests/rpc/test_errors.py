"""RPC error-path tests: bad arguments, dead groups, suspended groups."""

import pytest

from repro.errors import RpcTimeout

from support import CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestArgumentErrors:
    def test_wrong_arity_returns_error_result(self):
        bed = make_testbed(seed=250)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            result = yield client.call("svc", "increment", 1, 2, 3, 4)
            return result

        result = bed.run_process(scenario())
        assert not result.ok
        assert "TypeError" in result.error

    def test_error_replies_are_deterministic_across_replicas(self):
        bed = make_testbed(seed=251)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            result = yield client.call("svc", "increment", "not-a-number")
            return result

        result = bed.run_process(scenario())
        assert not result.ok
        bed.run(0.1)
        # Every replica failed the same way and none diverged.
        for replica in bed.replicas("svc").values():
            assert replica.app.count == 0
        # State still consistent for later valid calls.
        assert call_n(bed, client, "svc", "increment", 1) == [1]


class TestDeadGroup:
    def test_all_replicas_crashed_times_out(self):
        bed = make_testbed(seed=252)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 1)
        bed.crash("n1")
        bed.run(0.4)

        def scenario():
            try:
                yield client.call("svc", "increment", timeout=0.3)
            except RpcTimeout:
                return "dead"
            return "alive"

        assert bed.run_process(scenario()) == "dead"

    def test_calls_resume_after_group_resurrected(self):
        bed = make_testbed(seed=253)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 2)
        bed.crash("n1")
        bed.crash("n2")
        bed.run(0.5)
        bed.recover("n1")
        bed.run(0.5)
        bed.add_replica("svc", "n1", CounterApp, time_source="local")
        bed.run(1.5)
        # Total group failure: state restarts from scratch (the founder
        # fallback), which is the correct fail-stop semantics.
        values = call_n(bed, client, "svc", "increment", 1)
        assert values == [1]
