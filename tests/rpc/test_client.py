"""Tests for the RPC client: calls, replies, dedup, timeouts."""

import pytest

from repro.errors import RpcTimeout
from repro.rpc import Invocation, Result, unwrap

from support import CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestMessages:
    def test_invocation_repr(self):
        inv = Invocation("get_time", (1, "x"))
        assert "get_time" in str(inv)

    def test_result_ok(self):
        assert Result(value=42).ok
        assert not Result(error="Boom").ok

    def test_unwrap_value(self):
        assert unwrap(Result(value=7)) == 7

    def test_unwrap_error_raises(self):
        with pytest.raises(RuntimeError, match="Boom"):
            unwrap(Result(error="Boom"))


class TestCalls:
    def test_basic_call(self):
        bed = make_testbed(seed=30)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        assert call_n(bed, client, "svc", "increment", 1) == [1]

    def test_sequential_calls_get_sequence_numbers(self):
        bed = make_testbed(seed=31)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 3)
        assert client.stats.calls == 3
        assert client.stats.replies_first == 3

    def test_duplicate_replies_counted_not_delivered(self):
        bed = make_testbed(seed=32)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 2)
        bed.run(0.1)
        assert client.stats.replies_first == 2
        assert client.stats.replies_duplicate == 4

    def test_latency_measured_positive(self):
        bed = make_testbed(seed=33)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 5)
        assert len(client.stats.latencies_us) == 5
        assert all(lat > 0 for lat in client.stats.latencies_us)

    def test_timeout_when_no_server(self):
        bed = make_testbed(seed=34)
        client = bed.client("n0")
        bed.start()

        def scenario():
            try:
                yield client.call("ghost-group", "anything", timeout=0.05)
            except RpcTimeout:
                return "timed out"
            return "unexpected reply"

        assert bed.run_process(scenario()) == "timed out"
        assert client.stats.timeouts == 1

    def test_two_clients_do_not_interfere(self):
        bed = make_testbed(seed=35)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        client_a = bed.client("n0", "client-a")
        client_b = bed.client("n2", "client-b")
        bed.start()

        def scenario():
            result_a = yield client_a.call("svc", "increment")
            result_b = yield client_b.call("svc", "increment")
            return (result_a.value, result_b.value)

        assert bed.run_process(scenario()) == (1, 2)

    def test_call_to_multiple_groups(self):
        bed = make_testbed(seed=36)
        bed.deploy("alpha", CounterApp, ["n1"], time_source="local")
        bed.deploy("beta", CounterApp, ["n2"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            first = yield client.call("alpha", "increment")
            second = yield client.call("beta", "increment")
            return (first.value, second.value)

        # Separate groups have separate state.
        assert bed.run_process(scenario()) == (1, 1)
