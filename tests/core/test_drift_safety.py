"""Drift compensation must never defeat monotonicity.

An adversarially mis-configured steering reference (e.g. pointing at a
clock seconds in the past) pulls proposals downward; the monotonic floor
must clamp the adjusted proposal so the group clock still strictly
increases.
"""

import pytest

from repro.core import GroupClockState, ReferenceSteering

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestClampUnit:
    def test_clamp_raises_low_proposals(self):
        state = GroupClockState()
        state.commit(group_us=10_000, physical_us=10_000)
        assert state.clamp_to_floor(5_000) == 10_001
        assert state.clamp_to_floor(10_000) == 10_001
        assert state.clamp_to_floor(20_000) == 20_000

    def test_clamp_respects_causal_floor(self):
        state = GroupClockState()
        state.observe_causal_timestamp(99_000)
        assert state.clamp_to_floor(50_000) == 99_001


class TestAdversarialSteering:
    def test_backwards_reference_cannot_roll_clock_back(self):
        """A steering reference stuck at zero drags every proposal toward
        the epoch; the clamp keeps the group clock strictly monotone."""
        bed = make_testbed(seed=280, epoch_spread_s=10.0)
        bed.deploy(
            "svc", ClockApp, ["n1", "n2", "n3"],
            time_source="cts",
            drift=ReferenceSteering(lambda: 0, proportion=1.0),
        )
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "get_time", 10)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_forward_reference_fast_forwards_but_stays_consistent(self):
        """A reference far in the future fast-forwards the group clock —
        allowed (it is what steering is for) — but replicas stay
        identical."""
        bed = make_testbed(seed=281)
        bed.deploy(
            "svc", ClockApp, ["n1", "n2", "n3"],
            time_source="cts",
            drift=ReferenceSteering(lambda: 10**13, proportion=0.5),
        )
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "get_time", 5)
        assert all(b > a for a, b in zip(values, values[1:]))
        bed.run(0.05)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-5:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
