"""Integration of new clocks (paper Section 3.2): joining/recovering
replicas adopt the group clock through the special CCS round."""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestNewReplicaIntegration:
    def test_joiner_adopts_group_clock(self):
        bed = make_testbed(seed=90, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 5)
        joiner = bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(0.5)
        assert joiner.state_transfer.ready
        # The special round gave the joiner a committed offset.
        assert joiner.time_source.stats.recovery_adoptions >= 1
        assert joiner.time_source.clock_state.last_group_us is not None

    def test_group_clock_monotone_across_join(self):
        bed = make_testbed(seed=91, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        before = call_n(bed, client, "svc", "get_time", 5)
        bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(0.5)
        after = call_n(bed, client, "svc", "get_time", 5)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_joiner_returns_consistent_values(self):
        bed = make_testbed(seed=92, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 3)
        joiner = bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(0.5)
        call_n(bed, client, "svc", "get_time", 5)
        bed.run(0.1)
        joiner_vals = [v.micros for _, _, _, v in joiner.time_source.readings][-5:]
        old_vals = [
            v.micros
            for _, _, _, v in bed.replicas("svc")["n1"].time_source.readings
        ][-5:]
        assert joiner_vals == old_vals

    def test_joiner_round_counters_align(self):
        bed = make_testbed(seed=93)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 4)
        joiner = bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(0.5)
        call_n(bed, client, "svc", "get_time", 2)
        bed.run(0.1)
        old = bed.replicas("svc")["n1"].time_source
        new = joiner.time_source
        for thread_id, handler in old._handlers.items():
            if thread_id in new._handlers:
                assert (
                    new._handlers[thread_id].my_round_number
                    == handler.my_round_number
                )

    def test_crashed_replica_reintegrates_clock(self):
        bed = make_testbed(seed=94, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        before = call_n(bed, client, "svc", "get_time", 4)
        bed.crash("n3")
        bed.run(0.4)
        mid = call_n(bed, client, "svc", "get_time", 4)
        bed.recover("n3")
        bed.run(0.5)
        recovered = bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(1.0)
        assert recovered.state_transfer.ready
        after = call_n(bed, client, "svc", "get_time", 4)
        bed.run(0.1)
        sequence = before + mid + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))
        # The recovered replica answers identically to the survivors.
        rec_vals = [v.micros for _, _, _, v in recovered.time_source.readings][-4:]
        assert rec_vals == after

    def test_two_sequential_joiners(self):
        bed = make_testbed(seed=95)
        bed.deploy("svc", ClockApp, ["n1"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 2)
        bed.add_replica("svc", "n2", ClockApp, time_source="cts")
        bed.run(0.5)
        call_n(bed, client, "svc", "get_time", 2)
        bed.add_replica("svc", "n3", ClockApp, time_source="cts")
        bed.run(0.5)
        values = call_n(bed, client, "svc", "get_time", 4)
        bed.run(0.1)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-4:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
        assert list(readings[0]) == values
