"""Unit-level tests for ConsistentTimeService internals and edge cases."""

import pytest

from repro.core import (
    CCSMessage,
    ConsistentTimeService,
    TimeTransferState,
)
from repro.errors import TimeServiceError

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def build_service(seed=200, mode="active", **kwargs):
    bed = make_testbed(seed=seed)
    bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source=(
        lambda replica: ConsistentTimeService(replica, mode=mode, **kwargs)
    ))
    client = bed.client("n0")
    bed.start()
    return bed, client


class TestConstruction:
    def test_invalid_mode_rejected(self):
        bed = make_testbed(seed=201)
        with pytest.raises(TimeServiceError, match="unknown mode"):
            bed.deploy(
                "svc", ClockApp, ["n1"],
                time_source=lambda r: ConsistentTimeService(r, mode="quantum"),
            )

    def test_stats_start_at_zero(self):
        bed, _client = build_service(seed=202)
        service = bed.replicas("svc")["n1"].time_source
        # Only state-transfer special rounds may have run during start().
        assert service.stats.duplicates_discarded == 0
        assert service.stats.ccs_transmitted >= 0


class TestSuppressionToggle:
    def test_disabled_suppression_still_consistent(self):
        bed, client = build_service(seed=203, suppress_pending=False)
        values = call_n(bed, client, "svc", "get_time", 8)
        bed.run(0.1)
        assert all(b > a for a, b in zip(values, values[1:]))
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-8:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]

    def test_disabled_suppression_transmits_more(self):
        bed_on, client_on = build_service(seed=204, suppress_pending=True)
        call_n(bed_on, client_on, "svc", "get_time", 10)
        bed_on.run(0.1)
        on_total = sum(
            r.time_source.stats.ccs_transmitted
            for r in bed_on.replicas("svc").values()
        )
        bed_off, client_off = build_service(seed=204, suppress_pending=False)
        call_n(bed_off, client_off, "svc", "get_time", 10)
        bed_off.run(0.1)
        off_total = sum(
            r.time_source.stats.ccs_transmitted
            for r in bed_off.replicas("svc").values()
        )
        assert off_total >= on_total


class TestAbortInFlight:
    def test_abort_without_pending_is_noop(self):
        bed, client = build_service(seed=205)
        service = bed.replicas("svc")["n1"].time_source
        service.abort_in_flight()  # nothing blocked: no error

    def test_abort_fails_blocked_operation(self):
        bed, client = build_service(seed=206)
        replica = bed.replicas("svc")["n2"]
        service = replica.time_source
        # Block an operation artificially: read on a fresh thread in
        # primary-only fashion by suppressing sends.
        service._recovering = True  # recovering replicas never send
        event = service.read("9:orphan", "gettimeofday")
        bed.run(0.01)
        assert not event.triggered
        service.abort_in_flight()
        bed.run(0.001)
        assert event.triggered
        assert not event.ok
        assert isinstance(event.value, TimeServiceError)
        service._recovering = False

    def test_aborted_thread_can_read_again(self):
        bed, client = build_service(seed=207)
        replica = bed.replicas("svc")["n2"]
        service = replica.time_source
        service._recovering = True
        first = service.read("9:orphan", "gettimeofday")
        bed.run(0.01)
        service.abort_in_flight()
        service._recovering = False
        bed.run(0.01)
        second = service.read("9:orphan", "gettimeofday")
        bed.run(0.05)
        assert second.triggered and second.ok


class TestTransferStateUnit:
    def test_transfer_state_round_trip(self):
        state = TimeTransferState(
            rounds={"0:main": 7},
            buffered={"0:main": [CCSMessage("0:main", 8, 123456, 1)]},
            accepted={"0:main": 8},
            last_group_us=123456,
        )
        bed, _client = build_service(seed=208)
        service = bed.replicas("svc")["n1"].time_source
        service.set_transfer_state(state)
        assert service._initial_rounds == {"0:main": 7}
        assert service._accepted["0:main"] >= 8
        assert service.clock_state.last_group_us >= 123456

    def test_non_transfer_state_ignored(self):
        bed, _client = build_service(seed=209)
        service = bed.replicas("svc")["n1"].time_source
        service.set_transfer_state("garbage")  # silently ignored
        service.fast_forward(None)

    def test_wire_size_scales_with_buffered(self):
        empty = TimeTransferState()
        loaded = TimeTransferState(
            rounds={"a": 1},
            buffered={"a": [CCSMessage("a", 1, 0, 1)] * 5},
        )
        assert loaded.wire_size() > empty.wire_size()


class TestReadings:
    def test_reading_tuple_shape(self):
        bed, client = build_service(seed=210)
        call_n(bed, client, "svc", "get_time", 2)
        bed.run(0.05)
        service = bed.replicas("svc")["n1"].time_source
        sim_time, thread_id, call, value = service.readings[-1]
        assert isinstance(sim_time, float)
        assert thread_id.endswith(":main")
        assert call == "gettimeofday"
        assert value.micros > 0
