"""Unit tests for GroupClockState (offset arithmetic, floors)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import GroupClockState


class TestProposal:
    def test_initial_proposal_is_physical(self):
        state = GroupClockState()
        # Initialization: offset 0, so the first proposal is the physical
        # hardware clock value (paper Figure 2 lines 1-4).
        assert state.propose(1000) == 1000

    def test_proposal_adds_offset(self):
        state = GroupClockState()
        state.commit(group_us=900, physical_us=1000)
        assert state.offset_us == -100
        assert state.propose(2000) == 1900

    def test_commit_matches_paper_example_round1(self):
        """Figure 4: replica 2 reads pc=8:15, group clock 8:10 decided,
        offset becomes -0.05 (here minutes become microseconds)."""
        state = GroupClockState()
        assert state.commit(group_us=810, physical_us=815) == -5

    def test_monotonic_floor(self):
        state = GroupClockState()
        state.commit(group_us=5000, physical_us=5000)
        # A proposal that would not advance the clock is floored.
        assert state.propose(4000) == 5001
        assert state.propose(5000) == 5001
        assert state.propose(6000) == 6000

    def test_causal_floor(self):
        state = GroupClockState()
        state.observe_causal_timestamp(9000)
        assert state.propose(1000) == 9001
        assert state.propose(10_000) == 10_000

    def test_observe_group_value_tracks_max(self):
        state = GroupClockState()
        state.observe_group_value(100)
        state.observe_group_value(50)
        assert state.last_group_us == 100


class TestHistory:
    def test_history_records_rounds(self):
        state = GroupClockState()
        state.commit(100, 110)
        state.commit(220, 225)
        assert state.rounds_committed == 2
        assert state.offset_series() == [-10, -5]


class TestProperties:
    @given(
        rounds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10**12),
                st.integers(min_value=0, max_value=10**12),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_offset_identity_invariant(self, rounds):
        """After each round: group == physical + offset exactly."""
        state = GroupClockState()
        for group_us, physical_us in rounds:
            state.commit(group_us, physical_us)
            assert physical_us + state.offset_us == group_us

    @given(
        physicals=st.lists(
            st.integers(min_value=0, max_value=10**12), min_size=2, max_size=50
        )
    )
    def test_winner_sequence_strictly_increases(self, physicals):
        """If each round adopts some replica's proposal, the group clock
        strictly increases regardless of physical clock values."""
        state = GroupClockState()
        last = None
        for physical in physicals:
            proposal = state.propose(physical)
            if last is not None:
                assert proposal > last
            state.commit(proposal, physical)
            last = proposal
