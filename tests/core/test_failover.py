"""Failover behaviour of the group clock — the paper's core motivation.

With plain primary/backup clock handling ([9], [3]) a primary failure
can roll the clock back or jump it forward; the consistent time service
keeps it strictly monotone and consistent in the same scenarios.
"""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def passive_bed(seed, time_source, epoch_spread_s=30.0):
    bed = make_testbed(seed=seed, epoch_spread_s=epoch_spread_s)
    bed.deploy(
        "svc", ClockApp, ["n1", "n2", "n3"],
        style="passive", time_source=time_source, checkpoint_interval=5,
    )
    client = bed.client("n0")
    bed.start(settle=0.3)
    return bed, client


def crash_primary(bed):
    primary = next(nid for nid, r in bed.replicas("svc").items() if r.is_primary)
    bed.crash(primary)
    bed.run(0.6)


class TestCtsPassiveFailover:
    def test_clock_monotone_across_primary_crash(self):
        bed, client = passive_bed(seed=70, time_source="cts")
        before = call_n(bed, client, "svc", "get_time", 8)
        crash_primary(bed)
        after = call_n(bed, client, "svc", "get_time", 8)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_no_fast_forward_beyond_real_gap(self):
        """The step across failover stays within the elapsed real time
        plus a modest drift bound — no multi-second jumps from clock
        disagreement."""
        bed, client = passive_bed(seed=71, time_source="cts")
        before = call_n(bed, client, "svc", "get_time", 3)
        t_before = bed.sim.now
        crash_primary(bed)
        after = call_n(bed, client, "svc", "get_time", 3)
        t_after = bed.sim.now
        real_gap_us = (t_after - t_before) * 1e6
        step = after[0] - before[-1]
        assert 0 < step < real_gap_us + 50_000

    def test_monotone_across_two_failovers(self):
        bed, client = passive_bed(seed=72, time_source="cts")
        sequence = call_n(bed, client, "svc", "get_time", 4)
        for _ in range(2):
            crash_primary(bed)
            sequence += call_n(bed, client, "svc", "get_time", 4)
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_semi_active_failover_monotone(self):
        bed = make_testbed(seed=73, epoch_spread_s=30.0)
        bed.deploy(
            "svc", ClockApp, ["n1", "n2", "n3"],
            style="semi-active", time_source="cts",
        )
        client = bed.client("n0")
        bed.start(settle=0.3)
        before = call_n(bed, client, "svc", "get_time", 6)
        crash_primary(bed)
        after = call_n(bed, client, "svc", "get_time", 6)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_active_replication_loses_replica_monotone(self):
        bed = make_testbed(seed=74, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start(settle=0.3)
        before = call_n(bed, client, "svc", "get_time", 6)
        bed.crash("n1")
        bed.run(0.5)
        after = call_n(bed, client, "svc", "get_time", 6)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))


class TestBaselineExhibitsHazard:
    def test_primary_backup_can_roll_back(self):
        """Across many seeds, the primary/backup baseline rolls the clock
        back (or jumps it far forward) after at least one failover, while
        the CTS never does — the paper's Section 1 argument."""
        rollback_seen = False
        for seed in range(80, 88):
            bed, client = passive_bed(seed=seed, time_source="primary-backup")
            before = call_n(bed, client, "svc", "get_time", 4)
            crash_primary(bed)
            after = call_n(bed, client, "svc", "get_time", 4)
            if after[0] <= before[-1]:
                rollback_seen = True
                break
        assert rollback_seen, "expected at least one roll-back in 8 seeds"

    def test_cts_never_rolls_back_same_seeds(self):
        for seed in range(80, 88):
            bed, client = passive_bed(seed=seed, time_source="cts")
            before = call_n(bed, client, "svc", "get_time", 4)
            crash_primary(bed)
            after = call_n(bed, client, "svc", "get_time", 4)
            sequence = before + after
            assert all(
                b > a for a, b in zip(sequence, sequence[1:])
            ), f"roll-back with CTS at seed {seed}"
