"""Primary failure in the middle of a CCS round (paper Section 3).

"If the primary replica fails during the round before it sends the
consistent clock synchronization message ... then the new primary
replica will send a consistent clock synchronization message."

We make the initial primary pathologically slow so the backups reach the
clock operation first and block waiting for the primary's CCS message,
then crash the primary before it ever reaches the operation.  The
promoted backup must notice the blocked round and send its own proposal.
"""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def deploy_slow_primary(seed, style="semi-active"):
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], style=style,
               time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)
    primary = next(nid for nid, r in bed.replicas("svc").items()
                   if r.is_primary)
    # The primary now computes ~50x slower than the backups: backups
    # reach gettimeofday() long before it does.
    bed.cluster.node(primary).cpu_factor = 0.02
    return bed, client, primary


class TestMidRoundFailover:
    def test_new_primary_sends_for_blocked_round(self):
        bed, client, primary = deploy_slow_primary(seed=220)
        backups = [r for nid, r in bed.replicas("svc").items()
                   if nid != primary]

        # Launch a call; backups will block in the round while the slow
        # primary is still crunching the servant body.
        answers = []

        def scenario():
            result, _ = yield from client.timed_call("svc", "get_time",
                                                     timeout=5.0)
            answers.append(result)
            return result.value

        proc = bed.sim.process(scenario(), name="call")
        bed.run(0.0006)  # backups have reached the op; primary has not
        blocked = [
            r for r in backups
            if any(h.pending is not None
                   for h in r.time_source._handlers.values())
        ]
        assert blocked, "expected backups blocked mid-round"
        sent_before = sum(r.time_source.stats.ccs_sent for r in backups)
        assert sent_before == 0  # primary-only mode: backups never sent

        bed.cluster.node(primary).crash()
        for group_replicas in bed.services.values():
            group_replicas.pop(primary, None)
        bed.run(1.0)
        assert proc.triggered, "call never completed after failover"
        assert answers and answers[0].ok
        # Someone (the new primary) sent the CCS message for the round.
        sent_after = sum(r.time_source.stats.ccs_sent for r in backups)
        assert sent_after >= 1

    def test_round_value_is_monotone_after_midround_failover(self):
        bed, client, primary = deploy_slow_primary(seed=221)

        values = []

        def scenario():
            result, _ = yield from client.timed_call("svc", "get_time",
                                                     timeout=5.0)
            values.append(result.value)
            return result.value

        proc = bed.sim.process(scenario(), name="call")
        bed.run(0.0006)
        bed.cluster.node(primary).crash()
        for group_replicas in bed.services.values():
            group_replicas.pop(primary, None)
        bed.run(1.0)
        assert proc.triggered
        follow_up = call_n(bed, client, "svc", "get_time", 3)
        sequence = values + follow_up
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_backups_agree_after_midround_failover(self):
        bed, client, primary = deploy_slow_primary(seed=222)

        def scenario():
            result, _ = yield from client.timed_call("svc", "get_time",
                                                     timeout=5.0)
            return result.value

        proc = bed.sim.process(scenario(), name="call")
        bed.run(0.0006)
        bed.cluster.node(primary).crash()
        for group_replicas in bed.services.values():
            group_replicas.pop(primary, None)
        bed.run(1.0)
        call_n(bed, client, "svc", "get_time", 2)
        bed.run(0.1)
        survivors = bed.replicas("svc")
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-3:]
            for r in survivors.values()
        ]
        assert readings[0] == readings[1]
