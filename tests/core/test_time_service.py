"""Integration tests for the consistent time service — the paper's
central guarantees: agreement, monotonicity, duplicate suppression,
offset identity, synchronizer rotation."""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def deploy_cts(seed, nodes=("n1", "n2", "n3"), style="active", **kwargs):
    bed = make_testbed(seed=seed, **kwargs)
    bed.deploy("svc", ClockApp, list(nodes), style=style, time_source="cts")
    client = bed.client("n0")
    bed.start()
    return bed, client


class TestAgreement:
    def test_all_replicas_return_same_value(self):
        bed, client = deploy_cts(seed=40)
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.05)
        # Replicas that joined earlier served extra state-transfer
        # special rounds; the invocation rounds are the common suffix.
        readings = {
            nid: [v.micros for _, _, _, v in r.time_source.readings][-10:]
            for nid, r in bed.replicas("svc").items()
        }
        values = list(readings.values())
        assert values[0] == values[1] == values[2]
        assert len(values[0]) == 10

    def test_rounds_completed_counted(self):
        bed, client = deploy_cts(seed=41)
        call_n(bed, client, "svc", "get_time", 5)
        bed.run(0.05)
        for replica in bed.replicas("svc").values():
            # 5 invocation rounds plus any state-transfer special rounds.
            assert replica.time_source.stats.rounds_completed >= 5

    def test_offset_identity_per_round(self):
        """group == physical + offset after every committed round."""
        bed, client = deploy_cts(seed=42)
        call_n(bed, client, "svc", "get_time", 8)
        bed.run(0.05)
        for replica in bed.replicas("svc").values():
            for group_us, physical_us, offset_us in (
                replica.time_source.clock_state.history
            ):
                assert physical_us + offset_us == group_us

    def test_agreement_with_unsynchronized_clocks(self):
        # Huge epoch spread: physical clocks disagree by up to a minute.
        bed, client = deploy_cts(seed=43, epoch_spread_s=60.0)
        call_n(bed, client, "svc", "get_time", 6)
        bed.run(0.05)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-6:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]


class TestMonotonicity:
    def test_group_clock_strictly_increases(self):
        bed, client = deploy_cts(seed=44)
        values = call_n(bed, client, "svc", "get_time", 20)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_monotone_across_replica_crash(self):
        bed, client = deploy_cts(seed=45)
        before = call_n(bed, client, "svc", "get_time", 5)
        bed.crash("n2")
        bed.run(0.5)
        after = call_n(bed, client, "svc", "get_time", 5)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_monotone_with_negative_drift(self):
        bed, client = deploy_cts(seed=46, drift_ppm_max=200.0)
        values = call_n(bed, client, "svc", "get_time", 15)
        assert all(b > a for a, b in zip(values, values[1:]))


class TestDuplicateSuppression:
    def test_wire_ccs_count_equals_rounds(self):
        """Section 4.3: with duplicate suppression, the total number of
        CCS messages transmitted equals the number of rounds."""
        bed, client = deploy_cts(seed=47)
        rounds = 30
        call_n(bed, client, "svc", "get_time", rounds)
        bed.run(0.1)
        transmitted = sum(
            r.time_source.stats.ccs_transmitted
            for r in bed.replicas("svc").values()
        )
        decided_rounds = max(
            len(r.time_source.winners) for r in bed.replicas("svc").values()
        )
        assert transmitted == decided_rounds

    def test_duplicates_discarded_on_reception(self):
        bed, client = deploy_cts(seed=48)
        call_n(bed, client, "svc", "get_time", 20)
        bed.run(0.1)
        # Any CCS message that did reach the wire twice for a round was
        # discarded by receivers; the count is tracked.
        for replica in bed.replicas("svc").values():
            assert replica.time_source.stats.duplicates_discarded >= 0

    def test_slow_replicas_answer_from_buffer(self):
        """A replica that reaches the clock operation after the winner's
        CCS message was already delivered never constructs a message at
        all (Figure 2, line 11 short-circuit)."""
        bed, client = deploy_cts(seed=49)
        # Make n3 an order of magnitude slower: its clock operations start
        # after the round has already been decided.
        bed.cluster.node("n3").cpu_factor = 0.05
        call_n(bed, client, "svc", "get_time", 20)
        bed.run(0.1)
        slow = bed.replicas("svc")["n3"].time_source.stats
        assert slow.rounds_from_buffer > 0
        assert slow.ccs_sent < 20


class TestSynchronizer:
    def test_winner_recorded_per_round(self):
        bed, client = deploy_cts(seed=50)
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.05)
        replicas = list(bed.replicas("svc").values())
        winners = [w for _, _, w in replicas[0].time_source.winners]
        assert len(winners) >= 10
        # All winners are group members.
        assert set(winners) <= {"n1", "n2", "n3"}

    def test_winner_history_identical_across_replicas(self):
        bed, client = deploy_cts(seed=51)
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.05)
        histories = [
            tuple(r.time_source.winners) for r in bed.replicas("svc").values()
        ]
        assert histories[0] == histories[1] == histories[2]


class TestCallTypes:
    def test_time_returns_whole_seconds(self):
        bed, client = deploy_cts(seed=52)
        values = call_n(bed, client, "svc", "get_time_coarse", 3)
        assert all(v % 1_000_000 == 0 for v in values)

    def test_ftime_returns_milliseconds(self):
        bed, client = deploy_cts(seed=53)
        values = call_n(bed, client, "svc", "get_time_ms", 3)
        assert all(v % 1_000 == 0 for v in values)

    def test_mixed_calls_stay_consistent(self):
        bed, client = deploy_cts(seed=54)
        call_n(bed, client, "svc", "get_time", 2)
        call_n(bed, client, "svc", "get_time_coarse", 2)
        call_n(bed, client, "svc", "get_time_ms", 2)
        bed.run(0.05)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-6:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]


class TestModes:
    def test_semi_active_only_primary_sends(self):
        bed, client = deploy_cts(seed=55, style="semi-active")
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.05)
        senders = {
            nid: r.time_source.stats.ccs_sent
            for nid, r in bed.replicas("svc").items()
        }
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        for nid, sent in senders.items():
            if nid != primary:
                assert sent == 0

    def test_semi_active_values_consistent(self):
        bed, client = deploy_cts(seed=56, style="semi-active")
        values = call_n(bed, client, "svc", "get_time", 8)
        bed.run(0.05)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-8:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestDeterminism:
    def test_same_seed_same_group_clock(self):
        def run(seed):
            bed, client = deploy_cts(seed=seed)
            return tuple(call_n(bed, client, "svc", "get_time", 5))

        assert run(60) == run(60)
        assert run(60) != run(61)
