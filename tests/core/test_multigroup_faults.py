"""Multigroup causal stamps under faults: floors survive failover and
travel with state transfer."""

import pytest

from repro import Application
from repro.core import GroupClockStamp, observe_incoming, stamp_outgoing

from support import make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class HopApp(Application):
    def observe_and_read(self, ctx, stamp_micros):
        observe_incoming(ctx, GroupClockStamp("other", stamp_micros))
        value = yield ctx.gettimeofday()
        return value.micros

    def read(self, ctx):
        value = yield ctx.gettimeofday()
        stamp = stamp_outgoing(ctx)
        return {"value": value.micros, "stamp": stamp.micros}


def deploy(seed):
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy("svc", HopApp, ["n1", "n2", "n3"], time_source="cts")
    client = bed.client("n0")
    bed.start()
    return bed, client


def call(bed, client, method, *args):
    def scenario():
        result = yield client.call("svc", method, *args, timeout=3.0)
        assert result.ok, result.error
        return result.value

    return bed.run_process(scenario())


class TestCausalFloorUnderFaults:
    def test_floor_survives_replica_crash(self):
        bed, client = deploy(seed=240)
        # Raise the floor far above the group's natural clock.
        natural = call(bed, client, "read")["value"]
        floor = natural + 60_000_000  # one minute ahead
        first = call(bed, client, "observe_and_read", floor)
        assert first > floor
        bed.crash("n1")
        bed.run(0.6)
        after = call(bed, client, "read")["value"]
        # The floor held across the crash: no value below it, ever.
        assert after > floor

    def test_floor_transfers_to_joining_replica(self):
        bed, client = deploy(seed=241)
        natural = call(bed, client, "read")["value"]
        floor = natural + 60_000_000
        call(bed, client, "observe_and_read", floor)
        joiner = bed.add_replica("svc", "n0", HopApp, time_source="cts")
        bed.run(1.0)
        assert joiner.state_transfer.ready
        assert joiner.time_source.clock_state.causal_floor_us is not None
        assert joiner.time_source.clock_state.causal_floor_us >= floor
        after = call(bed, client, "read")["value"]
        assert after > floor
        bed.run(0.1)
        joiner_last = joiner.time_source.readings[-1][3].micros
        assert joiner_last > floor

    def test_floor_is_replica_consistent(self):
        bed, client = deploy(seed=242)
        natural = call(bed, client, "read")["value"]
        floor = natural + 5_000_000
        call(bed, client, "observe_and_read", floor)
        bed.run(0.1)
        floors = {
            nid: r.time_source.clock_state.causal_floor_us
            for nid, r in bed.replicas("svc").items()
        }
        assert set(floors.values()) == {floor}
