"""Primary-component partition handling (paper Section 2).

"Network partitioning faults are handled by the underlying group
communication system, which uses a primary component model ... only the
primary component survives a network partition."

The replica layer enforces it: a replica in a non-primary component
suspends; after the partition heals it rejoins via state transfer if
other members kept processing.
"""

import pytest

from repro.errors import RpcTimeout

from support import ClockApp, CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def partitioned_bed(seed, app=CounterApp, time_source="local"):
    bed = make_testbed(seed=seed)
    bed.deploy("svc", app, ["n1", "n2", "n3"], time_source=time_source)
    client = bed.client("n0")
    bed.start()
    return bed, client


class TestSuspension:
    def test_minority_replica_suspends(self):
        bed, client = partitioned_bed(seed=180)
        call_n(bed, client, "svc", "increment", 3)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        assert bed.replicas("svc")["n3"].suspended
        for node_id in ("n1", "n2"):
            assert not bed.replicas("svc")[node_id].suspended

    def test_majority_keeps_serving(self):
        bed, client = partitioned_bed(seed=181)
        call_n(bed, client, "svc", "increment", 3)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        values = call_n(bed, client, "svc", "increment", 3)
        assert values == [4, 5, 6]

    def test_suspended_replica_does_not_process(self):
        bed, client = partitioned_bed(seed=182)
        call_n(bed, client, "svc", "increment", 2)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        call_n(bed, client, "svc", "increment", 4)
        minority = bed.replicas("svc")["n3"]
        assert minority.app.count == 2  # stopped at the partition point

    def test_client_stranded_with_minority_times_out(self):
        bed = make_testbed(seed=183)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        stranded = bed.client("n3", "stranded-client")
        bed.start()
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)

        def scenario():
            try:
                yield stranded.call("svc", "increment", timeout=0.2)
            except RpcTimeout:
                return "timed out"
            return "answered"

        # n3's replica is suspended: the minority makes no progress.
        assert bed.run_process(scenario()) == "timed out"


class TestRemerge:
    def heal_and_settle(self, bed):
        bed.cluster.network.heal()
        bed.run(1.5)

    def test_minority_rejoins_with_fresh_state(self):
        bed, client = partitioned_bed(seed=184)
        call_n(bed, client, "svc", "increment", 2)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        call_n(bed, client, "svc", "increment", 5)  # majority-only work
        self.heal_and_settle(bed)
        rejoined = bed.replicas("svc")["n3"]
        assert not rejoined.suspended
        assert rejoined.state_transfer.ready
        assert rejoined.app.count == 7  # caught up via state transfer

    def test_rejoined_replica_processes_new_requests(self):
        bed, client = partitioned_bed(seed=185)
        call_n(bed, client, "svc", "increment", 2)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        call_n(bed, client, "svc", "increment", 3)
        self.heal_and_settle(bed)
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [6, 7]
        bed.run(0.2)
        assert bed.replicas("svc")["n3"].app.count == 7

    def test_group_clock_monotone_through_partition_cycle(self):
        bed, client = partitioned_bed(seed=186, app=ClockApp,
                                      time_source="cts")
        before = call_n(bed, client, "svc", "get_time", 3)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        during = call_n(bed, client, "svc", "get_time", 3)
        self.heal_and_settle(bed)
        after = call_n(bed, client, "svc", "get_time", 3)
        sequence = before + during + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_rejoined_replica_clock_consistent(self):
        bed, client = partitioned_bed(seed=187, app=ClockApp,
                                      time_source="cts")
        call_n(bed, client, "svc", "get_time", 3)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        call_n(bed, client, "svc", "get_time", 3)
        self.heal_and_settle(bed)
        final = call_n(bed, client, "svc", "get_time", 4)
        bed.run(0.2)
        rejoined = bed.replicas("svc")["n3"]
        rejoined_values = [
            v.micros for _, _, _, v in rejoined.time_source.readings
        ][-4:]
        assert rejoined_values == final
