"""Unit tests for the per-thread CCS handler."""

import pytest

from repro.core import CCSMessage
from repro.core.ccs_handler import CCSHandler, PendingRound
from repro.errors import TimeServiceError
from repro.sim import Simulator


def msg(round_number, value=1000, thread="0:main"):
    return CCSMessage(thread, round_number, value, 1)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def handler(sim):
    return CCSHandler(sim, "0:main")


class TestRounds:
    def test_rounds_increment(self, handler):
        assert handler.next_round() == 1
        handler.pending = None
        assert handler.next_round() == 2

    def test_start_round_offset_from_transfer(self, sim):
        handler = CCSHandler(sim, "0:main", start_round=17)
        assert handler.next_round() == 18

    def test_concurrent_round_in_same_thread_rejected(self, sim, handler):
        handler.next_round()
        handler.pending = PendingRound(1, 0, 1, 0, False, sim.event(), 0.0)
        with pytest.raises(TimeServiceError, match="still blocked"):
            handler.next_round()


class TestBuffer:
    def test_recv_appends_in_order(self, handler):
        handler.recv_CCS_msg(msg(1))
        handler.recv_CCS_msg(msg(2))
        assert [m.round_number for m in handler.my_input_buffer] == [1, 2]

    def test_pop_returns_first(self, handler):
        handler.recv_CCS_msg(msg(1, value=111))
        handler.recv_CCS_msg(msg(2, value=222))
        assert handler.pop_message().proposed_micros == 111

    def test_pop_empty_raises(self, handler):
        with pytest.raises(TimeServiceError, match="empty buffer"):
            handler.pop_message()

    def test_recv_wakes_waiter_on_empty_buffer_only(self, sim, handler):
        waiter = handler.wait_for_message()
        handler.recv_CCS_msg(msg(1))
        assert waiter.triggered
        # Second message: buffer non-empty, no new waiter woken (none set).
        handler.recv_CCS_msg(msg(2))

    def test_double_waiter_rejected(self, handler):
        handler.wait_for_message()
        with pytest.raises(TimeServiceError, match="blocked waiter"):
            handler.wait_for_message()

    def test_drop_through_discards_stale_rounds(self, handler):
        for r in range(1, 6):
            handler.recv_CCS_msg(msg(r))
        assert handler.drop_through(3) == 3
        assert [m.round_number for m in handler.my_input_buffer] == [4, 5]
