"""The paper's Figure 4 worked example, replayed exactly (unit level).

Values are the figure's times x100 (8:10 -> 810); see also the FIG4
benchmark, which prints the full comparison table.
"""

from repro.core import GroupClockState


def test_round_1_replica_1_synchronizes():
    r1, r2, r3 = GroupClockState(), GroupClockState(), GroupClockState()
    # R1 reads pc=8:10, proposes 8:10 (offset 0), wins.
    gc = r1.propose(810)
    assert gc == 810
    assert r1.commit(gc, 810) == 0
    assert r2.commit(gc, 815) == -5
    assert r3.commit(gc, 825) == -15


def test_full_three_round_example():
    states = {"R1": GroupClockState(), "R2": GroupClockState(),
              "R3": GroupClockState()}

    # Round 1 @ 8:10 — R1 wins.
    gc = states["R1"].propose(810)
    assert gc == 810
    states["R1"].commit(gc, 810)
    states["R2"].commit(gc, 815)
    states["R3"].commit(gc, 825)
    assert states["R1"].offset_us == 0
    assert states["R2"].offset_us == -5
    assert states["R3"].offset_us == -15

    # Round 2 @ 8:30 — R2 wins: pc 8:30 + offset -0.05 -> 8:25.
    gc = states["R2"].propose(830)
    assert gc == 825
    states["R1"].commit(gc, 840)
    states["R2"].commit(gc, 830)
    states["R3"].commit(gc, 835)
    assert states["R1"].offset_us == -15
    assert states["R2"].offset_us == -5
    assert states["R3"].offset_us == -10

    # Round 3 @ 8:50 — R3 wins: pc 8:50 + offset -0.10 -> 8:40.
    gc = states["R3"].propose(850)
    assert gc == 840
    states["R1"].commit(gc, 860)
    states["R2"].commit(gc, 855)
    states["R3"].commit(gc, 850)
    assert states["R1"].offset_us == -20
    assert states["R2"].offset_us == -15
    assert states["R3"].offset_us == -10


def test_example_group_clock_is_monotone():
    # 8:10 -> 8:25 -> 8:40: the figure's group clock strictly increases.
    assert 810 < 825 < 840
