"""Unit tests for the Section 3.3 drift-compensation strategies."""

import pytest

from repro.core import (
    MeanDelayCompensation,
    NoCompensation,
    ReferenceSteering,
)


class TestNoCompensation:
    def test_identity(self):
        strategy = NoCompensation()
        assert strategy.adjust_offset(-123) == -123
        assert strategy.adjust_proposal(456) == 456


class TestMeanDelay:
    def test_offset_increased_by_mean_delay(self):
        strategy = MeanDelayCompensation(mean_delay_us=300)
        assert strategy.adjust_offset(-1000) == -700

    def test_proposal_untouched(self):
        strategy = MeanDelayCompensation(mean_delay_us=300)
        assert strategy.adjust_proposal(5000) == 5000

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            MeanDelayCompensation(mean_delay_us=-1)


class TestReferenceSteering:
    def test_proposal_pulled_toward_reference(self):
        strategy = ReferenceSteering(lambda: 10_000, proportion=0.1)
        # proposal 9000, difference +1000, correction +100
        assert strategy.adjust_proposal(9000) == 9100

    def test_proposal_pulled_down_when_ahead(self):
        strategy = ReferenceSteering(lambda: 10_000, proportion=0.5)
        assert strategy.adjust_proposal(11_000) == 10_500

    def test_offset_untouched(self):
        strategy = ReferenceSteering(lambda: 0, proportion=0.2)
        assert strategy.adjust_offset(-400) == -400

    def test_invalid_proportion_rejected(self):
        with pytest.raises(ValueError):
            ReferenceSteering(lambda: 0, proportion=0.0)
        with pytest.raises(ValueError):
            ReferenceSteering(lambda: 0, proportion=1.5)
