"""Multigroup causal group clocks (paper Section 5 extension)."""

import pytest

from repro import Application
from repro.core import GroupClockStamp, observe_incoming, stamp_outgoing
from repro.errors import TimeServiceError

from support import call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class StampedApp(Application):
    """Sends/receives work items carrying group-clock stamps."""

    def __init__(self):
        self.observed = []

    def produce(self, ctx):
        value = yield ctx.gettimeofday()
        stamp = stamp_outgoing(ctx)
        return {"value": value.micros, "stamp": (stamp.group, stamp.micros)}

    def consume(self, ctx, stamp_group, stamp_micros):
        observe_incoming(ctx, GroupClockStamp(stamp_group, stamp_micros))
        self.observed.append(stamp_micros)
        value = yield ctx.gettimeofday()
        return value.micros


def two_group_bed(seed):
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy("alpha", StampedApp, ["n1", "n2"], time_source="cts")
    bed.deploy("beta", StampedApp, ["n2", "n3"], time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)
    return bed, client


class TestCausalStamps:
    def test_consumer_clock_exceeds_producer_stamp(self):
        bed, client = two_group_bed(seed=100)

        def scenario():
            produced = yield client.call("alpha", "produce")
            group, micros = produced.value["stamp"]
            consumed = yield client.call("beta", "consume", group, micros)
            return produced.value, consumed.value

        produced, consumed = bed.run_process(scenario())
        # Causality: the consuming group's clock exceeds the stamp even
        # though the groups' clocks are otherwise independent.
        assert consumed > produced["stamp"][1]
        assert consumed > produced["value"]

    def test_chain_of_causality_across_groups(self):
        bed, client = two_group_bed(seed=101)

        def scenario():
            values = []
            stamp = ("alpha", 0)
            for hop in range(6):
                group = "beta" if hop % 2 == 0 else "alpha"
                # Observe the previous group's stamp, then read the clock.
                consumed = yield client.call(group, "consume", *stamp)
                values.append(consumed.value)
                # Produce the next stamp from this group's clock.
                produced = yield client.call(group, "produce")
                stamp = produced.value["stamp"]
            return values

        values = bed.run_process(scenario())
        # Each consume's reading exceeds the stamp it observed, which in
        # turn exceeds the previous consume: a strictly increasing chain
        # across independently clocked groups.
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_stamp_is_deterministic_across_replicas(self):
        bed, client = two_group_bed(seed=102)

        def scenario():
            result = yield client.call("alpha", "produce")
            return result.value

        first = bed.run_process(scenario())
        bed.run(0.05)
        # Both alpha replicas observed the same stamped value (totally
        # ordered state), so the stamp is replica-independent.
        services = bed.replicas("alpha")
        floors = {
            nid: r.time_source.current_timestamp() for nid, r in services.items()
        }
        values = set(floors.values())
        assert len(values) == 1
        assert first["stamp"][1] in values

    def test_baseline_source_rejects_stamps(self):
        bed = make_testbed(seed=103)
        bed.deploy("svc", StampedApp, ["n1"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            result = yield client.call("svc", "consume", "other", 123)
            return result

        result = bed.run_process(scenario())
        assert not result.ok
        assert "consistent time service" in result.error
