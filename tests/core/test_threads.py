"""Multi-threaded replicas: per-thread CCS handlers (paper Section 3.1).

"There is one handler object for each thread"; CCS messages carry the
sending thread identifier and are matched to the corresponding handler,
with early arrivals for not-yet-created threads parked in the common
input buffer.
"""

import pytest

from repro import Application

from support import call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TimerApp(Application):
    """Main thread serves requests; a timer thread also reads the clock."""

    def __init__(self):
        self.timer_readings = []

    def get_time(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        return value.micros

    def timer_body(self, ctx, ticks=5):
        def body(tctx):
            for _ in range(ticks):
                yield tctx.sleep(0.02)
                value = yield tctx.gettimeofday()
                self.timer_readings.append(value.micros)

        return body


def deploy_with_timers(seed, ticks=5):
    bed = make_testbed(seed=seed)
    bed.deploy("svc", TimerApp, ["n1", "n2", "n3"], time_source="cts")
    client = bed.client("n0")
    bed.start()
    # Start the timer thread at every replica, in the same order.
    for replica in bed.replicas("svc").values():
        app = replica.app
        replica.create_thread("timer", app.timer_body(None, ticks))
    return bed, client


class TestTimerThreads:
    def test_timer_readings_consistent_across_replicas(self):
        bed, client = deploy_with_timers(seed=140)
        bed.run(0.2)  # 5 ticks at 20 ms
        readings = [
            tuple(r.app.timer_readings) for r in bed.replicas("svc").values()
        ]
        assert len(readings[0]) == 5
        assert readings[0] == readings[1] == readings[2]

    def test_timer_and_main_threads_use_separate_handlers(self):
        bed, client = deploy_with_timers(seed=141)
        call_n(bed, client, "svc", "get_time", 3)
        bed.run(0.2)
        service = bed.replicas("svc")["n1"].time_source
        thread_ids = set(service._handlers)
        timer_threads = {t for t in thread_ids if t.endswith(":timer")}
        main_threads = {t for t in thread_ids if t.endswith(":main")}
        assert len(timer_threads) == 1
        assert len(main_threads) == 1

    def test_interleaved_threads_all_monotone_per_thread(self):
        bed, client = deploy_with_timers(seed=142)
        values = call_n(bed, client, "svc", "get_time", 4)
        bed.run(0.2)
        app = bed.replicas("svc")["n1"].app
        assert all(b > a for a, b in zip(values, values[1:]))
        assert all(
            b > a for a, b in zip(app.timer_readings, app.timer_readings[1:])
        )

    def test_global_monotonicity_across_threads(self):
        """Values from different threads interleave but the group clock
        as a whole never steps back (strict monotonic floor)."""
        bed, client = deploy_with_timers(seed=143)
        call_n(bed, client, "svc", "get_time", 4)
        bed.run(0.2)
        service = bed.replicas("svc")["n1"].time_source
        in_order = [v.micros for _, _, _, v in service.readings]
        assert all(b > a for a, b in zip(in_order, in_order[1:]))

    def test_thread_ids_deterministic_across_replicas(self):
        bed, client = deploy_with_timers(seed=144)
        bed.run(0.1)
        id_sets = [
            tuple(r.threads.thread_ids) for r in bed.replicas("svc").values()
        ]
        assert id_sets[0] == id_sets[1] == id_sets[2]
        assert id_sets[0][0].endswith(":main")
        assert id_sets[0][1].endswith(":timer")


class TestCommonInputBuffer:
    def test_early_ccs_parked_until_thread_exists(self):
        """A slow replica receives CCS messages for a thread it has not
        created yet; they wait in the common input buffer (Figure 3,
        line 4) and are consumed when the thread's first operation runs
        (Figure 2, line 10)."""
        bed, client = deploy_with_timers(seed=145)
        # Skip creating the timer thread at n3 initially; n1/n2's timer
        # rounds will arrive at n3 with no matching handler.
        bed2 = make_testbed(seed=146)
        bed2.deploy("svc", TimerApp, ["n1", "n2", "n3"], time_source="cts")
        client2 = bed2.client("n0")
        bed2.start()
        replicas = bed2.replicas("svc")
        for node_id in ("n1", "n2"):
            replica = replicas[node_id]
            replica.create_thread("timer", replica.app.timer_body(None, 3))
        bed2.run(0.05)
        slow = replicas["n3"]
        parked = [
            m.thread_id for m in slow.time_source.my_common_input_buffer
        ]
        assert parked and all(t.endswith(":timer") for t in parked)
        # Now create the thread at n3: it drains the parked rounds and
        # produces the same readings as the others.
        slow.create_thread("timer", slow.app.timer_body(None, 3))
        bed2.run(0.3)
        readings = [tuple(r.app.timer_readings) for r in replicas.values()]
        assert readings[0] == readings[1] == readings[2]
