"""Unit tests for clock-call interposition (type ids, granularity)."""

import pytest

from repro.core import CLOCK_CALLS, CLOCK_CALLS_BY_ID, resolve_call
from repro.errors import TimeServiceError
from repro.sim import ClockValue


class TestClockCalls:
    def test_three_interposed_calls(self):
        assert set(CLOCK_CALLS) == {"gettimeofday", "time", "ftime"}

    def test_type_ids_unique(self):
        ids = [call.type_id for call in CLOCK_CALLS.values()]
        assert len(ids) == len(set(ids))

    def test_reverse_lookup(self):
        for call in CLOCK_CALLS.values():
            assert CLOCK_CALLS_BY_ID[call.type_id] is call

    def test_gettimeofday_microsecond_granularity(self):
        call = resolve_call("gettimeofday")
        assert call.quantize(1_234_567) == 1_234_567

    def test_ftime_millisecond_granularity(self):
        call = resolve_call("ftime")
        assert call.quantize(1_234_567) == 1_234_000

    def test_time_second_granularity(self):
        call = resolve_call("time")
        assert call.quantize(1_234_567) == 1_000_000

    def test_quantize_value(self):
        call = resolve_call("ftime")
        assert call.quantize_value(ClockValue(999_999)) == ClockValue(999_000)

    def test_unknown_call_rejected(self):
        with pytest.raises(TimeServiceError, match="unknown clock-related call"):
            resolve_call("clock_gettime")
