"""Passive-replication replay determinism (paper Sections 1 & 3.3).

The decisive property: when a backup takes over and replays logged
requests, its clock-related operations consume the **buffered CCS
messages from the old primary's rounds**, so the replayed execution
reproduces the exact clock values the old primary used — state derived
from clock readings is bit-identical across the failover.
"""

import pytest

from repro import Application

from support import make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class StampLog(Application):
    """Remembers the clock value used for every request."""

    def __init__(self):
        self.stamps = []

    def stamp(self, ctx):
        yield ctx.compute(20e-6)
        value = yield ctx.gettimeofday()
        self.stamps.append(value.micros)
        return value.micros

    def get_state(self):
        return list(self.stamps)

    def set_state(self, state):
        self.stamps = list(state)


def deploy(seed, checkpoint_interval=100):
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy(
        "svc", StampLog, ["n1", "n2", "n3"],
        style="passive", time_source="cts",
        checkpoint_interval=checkpoint_interval,
    )
    client = bed.client("n0")
    bed.start(settle=0.3)
    return bed, client


def calls(bed, client, n):
    def scenario():
        values = []
        for _ in range(n):
            result, _ = yield from client.timed_call("svc", "stamp",
                                                     timeout=3.0)
            assert result.ok, result.error
            values.append(result.value)
        return values

    return bed.run_process(scenario())


class TestReplayDeterminism:
    def test_replayed_stamps_match_original_execution(self):
        bed, client = deploy(seed=150)
        original = calls(bed, client, 7)
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        bed.crash(primary)
        bed.run(0.6)
        new_primary = next(
            r for r in bed.replicas("svc").values() if r.is_primary
        )
        # The promoted backup replayed all 7 requests; its stamps equal
        # the values the old primary answered with.
        assert new_primary.app.stamps[:7] == original

    def test_replay_consumes_buffered_rounds_not_new_ones(self):
        bed, client = deploy(seed=151)
        calls(bed, client, 6)
        backup = next(
            r for r in bed.replicas("svc").values() if not r.is_primary
        )
        # The backup holds the old primary's 6+ winning CCS messages.
        buffered = sum(
            len(msgs_for_thread)
            for msgs_for_thread in [backup.time_source.my_common_input_buffer]
        )
        assert buffered >= 6
        sent_before = backup.time_source.stats.ccs_sent
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        bed.crash(primary)
        bed.run(0.6)
        if backup.is_primary:
            # Replaying did not send CCS messages for the buffered rounds.
            assert backup.time_source.stats.rounds_from_buffer >= 6
            assert backup.time_source.stats.ccs_sent == sent_before

    def test_new_rounds_after_replay_continue_group_clock(self):
        bed, client = deploy(seed=152)
        before = calls(bed, client, 5)
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        bed.crash(primary)
        bed.run(0.6)
        after = calls(bed, client, 5)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    def test_checkpoint_prunes_buffered_rounds(self):
        """With frequent checkpoints, backups fast-forward past covered
        rounds and drop the corresponding buffered CCS messages."""
        bed, client = deploy(seed=153, checkpoint_interval=3)
        calls(bed, client, 9)
        bed.run(0.1)
        backup = next(
            r for r in bed.replicas("svc").values() if not r.is_primary
        )
        # At most the rounds since the last checkpoint remain buffered.
        assert len(backup.time_source.my_common_input_buffer) <= 4

    def test_replay_after_checkpoint_only_replays_tail(self):
        bed, client = deploy(seed=154, checkpoint_interval=4)
        original = calls(bed, client, 10)
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        old_primary_replica = bed.replicas("svc")[primary]
        bed.crash(primary)
        bed.run(0.6)
        new_primary = next(
            r for r in bed.replicas("svc").values() if r.is_primary
        )
        # State = checkpoint + replayed tail; stamps match the original.
        assert new_primary.app.stamps == original
        # And the replay processed fewer requests than the full history.
        assert new_primary.stats.requests_processed < 10
