"""State transfer with multiple logical threads: a joiner's timer thread
must align its CCS rounds with the group's, via the transferred
per-thread round counters."""

import pytest

from repro import Application

from support import call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TimerCounterApp(Application):
    def __init__(self):
        self.count = 0
        self.timer_stamps = []

    def bump(self, ctx):
        yield ctx.compute(15e-6)
        self.count += 1
        return self.count

    def timer_body(self, ticks):
        def body(ctx):
            for _ in range(ticks):
                yield ctx.sleep(0.02)
                value = yield ctx.gettimeofday()
                self.timer_stamps.append(value.micros)

        return body

    def get_state(self):
        return {"count": self.count, "stamps": list(self.timer_stamps)}

    def set_state(self, state):
        self.count = state["count"]
        self.timer_stamps = list(state["stamps"])


class TestTimerThreadTransfer:
    def test_joiner_timer_thread_aligns_rounds(self):
        bed = make_testbed(seed=270, epoch_spread_s=30.0)
        bed.deploy("svc", TimerCounterApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        # Existing members run timer threads (same creation order).
        for replica in bed.replicas("svc").values():
            replica.create_thread("timer", replica.app.timer_body(1000))
        bed.run(0.1)  # a few timer rounds happen
        call_n(bed, client, "svc", "bump", 2)

        joiner = bed.add_replica("svc", "n3", TimerCounterApp,
                                 time_source="cts")
        bed.run(0.5)
        assert joiner.state_transfer.ready
        # The transferred state carried the timer thread's position: its
        # initial round counter matches the members' handler.
        veteran = bed.replicas("svc")["n1"].time_source
        timer_thread = next(
            t for t in veteran._handlers if t.endswith(":timer")
        )
        transferred = joiner.time_source._initial_rounds.get(timer_thread)
        assert transferred is not None
        # Start the joiner's timer thread: it continues from the group's
        # round position and produces identical subsequent stamps.
        joiner.create_thread("timer", joiner.app.timer_body(1000))
        bed.run(0.2)
        joiner_tail = joiner.app.timer_stamps
        veteran_stamps = bed.replicas("svc")["n1"].app.timer_stamps
        # The joiner inherited the pre-join stamps via app state, then
        # appended the same post-join stamps the veterans computed.
        assert joiner_tail == veteran_stamps[: len(joiner_tail)] or \
            joiner_tail[-3:] == veteran_stamps[-3:]

    def test_timer_stamps_strictly_monotone_across_join(self):
        bed = make_testbed(seed=271, epoch_spread_s=30.0)
        bed.deploy("svc", TimerCounterApp, ["n1", "n2"], time_source="cts")
        bed.start()
        for replica in bed.replicas("svc").values():
            replica.create_thread("timer", replica.app.timer_body(1000))
        bed.run(0.1)
        joiner = bed.add_replica("svc", "n3", TimerCounterApp,
                                 time_source="cts")
        bed.run(0.5)
        joiner.create_thread("timer", joiner.app.timer_body(1000))
        bed.run(0.3)
        stamps = bed.replicas("svc")["n1"].app.timer_stamps
        assert len(stamps) > 10
        assert all(b > a for a, b in zip(stamps, stamps[1:]))
