"""The kind-8 ShardSummary payload: wire pinning and signed round trips.

Summaries cross shard boundaries, so unlike intra-group traffic they are
decoded by daemons that do not share the sender's process — the byte
layout is a compatibility surface and is pinned here.  Random round-trip
coverage rides along in ``tests/properties/test_wire_roundtrip.py``.
"""

import struct

from repro.net.wire import (
    decode_frame,
    decode_payload,
    encode_payload,
    frame,
)
from repro.shard.summary import ShardSummary

_KIND_SUMMARY = 8


def sample_summary(**overrides):
    fields = dict(shard=2, group="shard2", value_us=1_722_000_000_123_456,
                  offset_us=-48_213, round_seq=907, error_us=150)
    fields.update(overrides)
    return ShardSummary(**fields)


class TestWireLayout:
    def test_kind_byte_and_fixed_fields(self):
        summary = sample_summary()
        data = encode_payload(summary)
        assert data[0] == _KIND_SUMMARY
        shard, value_us, offset_us, round_seq, error_us = struct.unpack_from(
            "<qqqqq", data, 1)
        assert (shard, value_us, offset_us, round_seq, error_us) == (
            2, 1_722_000_000_123_456, -48_213, 907, 150)

    def test_negative_offsets_survive(self):
        # Offsets are signed: a group clock may sit behind the primary's
        # physical clock.  An unsigned pack would corrupt them silently.
        summary = sample_summary(value_us=-5, offset_us=-(2**40))
        decoded, offset = decode_payload(encode_payload(summary))
        assert decoded == summary
        assert offset == len(encode_payload(summary))


class TestSignedRoundTrip:
    def test_signed_summary_survives_the_frame(self):
        signed = sample_summary().sign("overlay-secret")
        assert signed.signature
        src, decoded = decode_frame(frame("s2n0", encode_payload(signed)))
        assert src == "s2n0"
        assert decoded == signed
        assert decoded.verify("overlay-secret")
        assert not decoded.verify("wrong")

    def test_unsigned_summary_survives_the_frame(self):
        summary = sample_summary()
        _, decoded = decode_frame(frame("s2n0", encode_payload(summary)))
        assert decoded == summary
        assert decoded.signature == ""

    def test_on_wire_tampering_breaks_the_mac(self):
        signed = sample_summary().sign("overlay-secret")
        data = bytearray(encode_payload(signed))
        # Flip the low byte of value_us (first struct field after kind
        # and shard) — the classic "advertise a faster clock" forgery.
        data[1 + 8] ^= 0xFF
        decoded, _ = decode_payload(bytes(data))
        assert decoded != signed
        assert not decoded.verify("overlay-secret")
