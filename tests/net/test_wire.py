"""Deterministic error-path tests for the live wire format.

Round-trip coverage lives in ``tests/properties/test_wire_roundtrip.py``;
this file pins the specific rejections the daemon relies on to survive a
hostile or confused peer on its UDP port.
"""

import struct

import pytest

from repro.net.wire import (
    FrameError,
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    decode_frame,
    decode_frame_ex,
    decode_payload,
    encode_frame,
    encode_payload,
    frame,
    unframe,
    unframe_ex,
)
from repro.replication import MsgType, make_envelope
from repro.replication.codec import _pack_str
from repro.rpc import Invocation
from repro.totem.messages import LostMessage
from repro.trace import TraceContext


def sample_envelope():
    return make_envelope(
        MsgType.REQUEST, "cli", "srv", 1, 7, "n0",
        body=Invocation("get_time", ()),
    )


class TestFraming:
    def test_header_layout(self):
        data = frame("n0", b"xyz")
        assert data[:2] == MAGIC
        assert data[2] == WIRE_VERSION
        (length,) = struct.unpack_from("<I", data, 3)
        assert length == len(data) - HEADER_SIZE

    def test_unframe_returns_src_and_payload(self):
        src, payload = unframe(frame("n2", b"payload"))
        assert src == "n2"
        assert payload == b"payload"

    def test_short_frame_rejected(self):
        with pytest.raises(FrameError, match="short frame"):
            unframe(b"CT\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(frame("n0", b"x"))
        data[0] = ord("X")
        with pytest.raises(FrameError, match="bad magic"):
            unframe(bytes(data))

    def test_future_version_rejected(self):
        data = bytearray(frame("n0", b"x"))
        data[2] = WIRE_VERSION + 1
        with pytest.raises(FrameError, match="unsupported wire version"):
            unframe(bytes(data))

    def test_length_mismatch_rejected(self):
        data = frame("n0", b"x")
        with pytest.raises(FrameError, match="length mismatch"):
            unframe(data + b"zz")

    def test_trailing_garbage_after_payload_rejected(self):
        data = frame("n0", encode_payload(sample_envelope()) + b"\x00")
        with pytest.raises(FrameError, match="trailing bytes"):
            decode_frame(data)


class TestTraceField:
    def test_trace_context_roundtrips(self):
        tctx = TraceContext("00ab00ab00ab00ab", "client.c1")
        data = encode_frame("n0", sample_envelope(), trace=tctx)
        src, payload, decoded = decode_frame_ex(data)
        assert src == "n0"
        assert payload == sample_envelope()
        assert decoded == tctx
        assert decoded.parent == "client.c1"

    def test_two_tuple_contract_drops_the_trace(self):
        tctx = TraceContext("00ab00ab00ab00ab", "client.c1")
        data = encode_frame("n0", sample_envelope(), trace=tctx)
        src, payload = decode_frame(data)
        assert src == "n0"
        assert payload == sample_envelope()
        src, payload_bytes = unframe(data)
        assert src == "n0"

    def test_frame_without_trace_decodes_to_none(self):
        data = encode_frame("n0", sample_envelope())
        _, _, decoded = decode_frame_ex(data)
        assert decoded is None

    def test_v2_frame_without_flags_byte_decodes(self):
        payload_bytes = encode_payload(sample_envelope())
        body = _pack_str("n1") + payload_bytes
        data = MAGIC + bytes([2]) + struct.pack("<I", len(body)) + body
        src, decoded, tctx = decode_frame_ex(data)
        assert src == "n1"
        assert decoded == sample_envelope()
        assert tctx is None

    def test_unknown_flag_bits_rejected(self):
        body = _pack_str("n0") + bytes([0x80]) + b"x"
        data = MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", len(body)) + body
        with pytest.raises(FrameError, match="unknown frame flags") as exc:
            unframe_ex(data)
        assert exc.value.reason == "trace"

    def test_truncated_trace_context_rejected(self):
        tctx = TraceContext("00ab00ab00ab00ab", "client.c1")
        data = frame("n0", b"", trace=tctx)
        # Chop the body mid trace-id; patch the length so only the trace
        # field (not the frame length check) can reject it.
        body = data[HEADER_SIZE:][:-10]
        cut = MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", len(body)) + body
        with pytest.raises(FrameError) as exc:
            unframe_ex(cut)
        assert exc.value.reason == "trace"

    def test_missing_flags_byte_rejected_as_truncated(self):
        body = _pack_str("n0")  # v3 body that ends before the flags byte
        data = MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", len(body)) + body
        with pytest.raises(FrameError, match="flags byte") as exc:
            unframe_ex(data)
        assert exc.value.reason == "truncated"

    def test_rejection_reasons_are_machine_readable(self):
        cases = [
            (b"CT\x01", "truncated"),
            (b"XX\x03" + struct.pack("<I", 0), "magic"),
            (MAGIC + bytes([WIRE_VERSION + 1]) + struct.pack("<I", 0), "version"),
            (frame("n0", b"x") + b"zz", "length"),
        ]
        for data, reason in cases:
            with pytest.raises(FrameError) as exc:
                unframe(data)
            assert exc.value.reason == reason, data

    def test_trailing_garbage_reason(self):
        # LostMessage is fixed-size, so the framing layer (not the
        # payload codec) sees the leftover byte.
        data = frame("n0", encode_payload(LostMessage()) + b"\x00")
        with pytest.raises(FrameError) as exc:
            decode_frame(data)
        assert exc.value.reason == "trailing"

    def test_envelope_trailing_garbage_is_a_payload_error(self):
        data = frame("n0", encode_payload(sample_envelope()) + b"\x00")
        with pytest.raises(FrameError) as exc:
            decode_frame(data)
        assert exc.value.reason == "payload"


class TestPayloads:
    def test_envelope_roundtrip(self):
        env = sample_envelope()
        src, decoded = decode_frame(encode_frame("n0", env))
        assert src == "n0"
        assert decoded == env

    def test_unknown_kind_tag_rejected(self):
        with pytest.raises(FrameError, match="unknown payload kind"):
            decode_payload(b"\xff", 0)

    def test_empty_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_payload(b"", 0)

    def test_unencodable_payload_rejected(self):
        with pytest.raises(FrameError, match="not wire-encodable"):
            encode_payload(object())
