"""Deterministic error-path tests for the live wire format.

Round-trip coverage lives in ``tests/properties/test_wire_roundtrip.py``;
this file pins the specific rejections the daemon relies on to survive a
hostile or confused peer on its UDP port.
"""

import struct

import pytest

from repro.net.wire import (
    FrameError,
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
    frame,
    unframe,
)
from repro.replication import MsgType, make_envelope
from repro.rpc import Invocation


def sample_envelope():
    return make_envelope(
        MsgType.REQUEST, "cli", "srv", 1, 7, "n0",
        body=Invocation("get_time", ()),
    )


class TestFraming:
    def test_header_layout(self):
        data = frame("n0", b"xyz")
        assert data[:2] == MAGIC
        assert data[2] == WIRE_VERSION
        (length,) = struct.unpack_from("<I", data, 3)
        assert length == len(data) - HEADER_SIZE

    def test_unframe_returns_src_and_payload(self):
        src, payload = unframe(frame("n2", b"payload"))
        assert src == "n2"
        assert payload == b"payload"

    def test_short_frame_rejected(self):
        with pytest.raises(FrameError, match="short frame"):
            unframe(b"CT\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(frame("n0", b"x"))
        data[0] = ord("X")
        with pytest.raises(FrameError, match="bad magic"):
            unframe(bytes(data))

    def test_future_version_rejected(self):
        data = bytearray(frame("n0", b"x"))
        data[2] = WIRE_VERSION + 1
        with pytest.raises(FrameError, match="unsupported wire version"):
            unframe(bytes(data))

    def test_length_mismatch_rejected(self):
        data = frame("n0", b"x")
        with pytest.raises(FrameError, match="length mismatch"):
            unframe(data + b"zz")

    def test_trailing_garbage_after_payload_rejected(self):
        data = frame("n0", encode_payload(sample_envelope()) + b"\x00")
        with pytest.raises(FrameError, match="trailing bytes"):
            decode_frame(data)


class TestPayloads:
    def test_envelope_roundtrip(self):
        env = sample_envelope()
        src, decoded = decode_frame(encode_frame("n0", env))
        assert src == "n0"
        assert decoded == env

    def test_unknown_kind_tag_rejected(self):
        with pytest.raises(FrameError, match="unknown payload kind"):
            decode_payload(b"\xff", 0)

    def test_empty_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_payload(b"", 0)

    def test_unencodable_payload_rejected(self):
        with pytest.raises(FrameError, match="not wire-encodable"):
            encode_payload(object())
