"""LiveCaller under hostile servers: deadline budgeting, retries with a
stable operation id, and the per-server circuit breaker.

The "servers" here are bare UDP sockets — a black hole that never
answers and a scripted responder — so each retry-path property is pinned
without booting a ring.
"""

import socket
import threading
import time

import pytest

from repro.errors import RpcTimeout
from repro.net.client import LiveCaller
from repro.net.wire import decode_frame, encode_frame
from repro.replication.envelope import MsgType, make_envelope
from repro.rpc.messages import Result

pytestmark = pytest.mark.live


class BlackHole:
    """A bound port that swallows everything."""

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.address = self.sock.getsockname()

    def close(self):
        self.sock.close()


class Responder:
    """Replies to well-formed requests, optionally deaf to the first N.

    Records the operation id ``(conn_id, seq)`` of every request it
    sees, so tests can assert that retries re-send the same id.
    """

    def __init__(self, *, ignore_first: int = 0, name: str = "s0"):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.settimeout(0.05)
        self.address = self.sock.getsockname()
        self.ignore_first = ignore_first
        self.name = name
        self.seen = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        value = 0
        while not self._stop.is_set():
            try:
                data, addr = self.sock.recvfrom(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            _src, envelope = decode_frame(data)
            header = envelope.header
            self.seen.append((header.conn_id, header.msg_seq_num))
            if len(self.seen) <= self.ignore_first:
                continue
            value += 1
            reply = make_envelope(
                MsgType.REPLY, header.dst_grp, header.src_grp,
                header.conn_id, header.msg_seq_num, self.name,
                body=Result(value=value))
            self.sock.sendto(encode_frame(self.name, reply), addr)

    def close(self):
        self._stop.set()
        self._thread.join(timeout=1.0)
        self.sock.close()


class TestDeadlineBudget:
    def test_black_holed_first_server_cannot_starve_the_rest(self):
        """The call budget is one monotonic deadline split across the
        untried servers — not a fixed per-server floor — so a dead first
        address still leaves the live one enough time to answer."""
        hole, responder = BlackHole(), Responder()
        try:
            with LiveCaller([hole.address, responder.address],
                            client_id="budget") as caller:
                started = time.monotonic()
                outcome = caller.call("gettimeofday", timeout=2.0)
                elapsed = time.monotonic() - started
            assert outcome.first().ok
            assert outcome.via == responder.address
            assert outcome.attempts >= 2
            assert elapsed < 2.0  # answered within the budget, not at it
        finally:
            hole.close()
            responder.close()

    def test_exhausted_deadline_raises_rpc_timeout(self):
        hole = BlackHole()
        try:
            with LiveCaller([hole.address], client_id="doomed") as caller:
                started = time.monotonic()
                with pytest.raises(RpcTimeout, match="attempts"):
                    caller.call("gettimeofday", timeout=0.3)
                elapsed = time.monotonic() - started
            assert 0.25 <= elapsed < 1.5  # respected the deadline
        finally:
            hole.close()


class TestRetries:
    def test_retries_resend_the_same_operation_id(self):
        """Every re-send carries the original ``(conn_id, seq)`` so the
        gateway can deduplicate instead of executing twice.  Listing the
        same server twice makes the first attempt time out (the deaf
        window) and the retry succeed — both observed by one socket."""
        responder = Responder(ignore_first=1)
        try:
            with LiveCaller([responder.address, responder.address],
                            client_id="sameop") as caller:
                outcome = caller.call("gettimeofday", timeout=3.0)
                stats = caller.stats
            assert outcome.first().ok
            assert outcome.attempts >= 2
            assert stats.retries >= 1
            assert len(responder.seen) >= 2
            assert len(set(responder.seen)) == 1  # one op id throughout
        finally:
            responder.close()

    def test_sequential_calls_use_fresh_operation_ids(self):
        responder = Responder()
        try:
            with LiveCaller([responder.address], client_id="fresh") as caller:
                caller.call("gettimeofday", timeout=2.0)
                caller.call("gettimeofday", timeout=2.0)
            assert len(set(responder.seen)) == len(responder.seen) == 2
        finally:
            responder.close()


class TestCircuitBreaker:
    def test_repeated_timeouts_open_the_breaker(self):
        """Three consecutive dead calls trip the breaker; the next call
        records the skip (and still probes rather than failing fast)."""
        hole = BlackHole()
        try:
            with LiveCaller([hole.address], client_id="breaker") as caller:
                for _ in range(LiveCaller.BREAKER_THRESHOLD):
                    with pytest.raises(RpcTimeout):
                        caller.call("gettimeofday", timeout=0.15)
                assert caller.stats.breaker_skips == 0
                with pytest.raises(RpcTimeout):
                    caller.call("gettimeofday", timeout=0.2)
                assert caller.stats.breaker_skips > 0
                assert caller.stats.failures == LiveCaller.BREAKER_THRESHOLD + 1
        finally:
            hole.close()

    def test_breaker_recovers_after_cooldown_probe(self):
        responder = Responder(ignore_first=LiveCaller.BREAKER_THRESHOLD)
        try:
            with LiveCaller([responder.address],
                            client_id="halfopen") as caller:
                # Enough dead calls against the deaf window to trip the
                # breaker...
                for _ in range(LiveCaller.BREAKER_THRESHOLD):
                    with pytest.raises(RpcTimeout):
                        caller.call("gettimeofday", timeout=0.2)
                # ...then the cooldown elapses and the half-open probe
                # finds the server answering again.
                time.sleep(LiveCaller.BREAKER_COOLDOWN + 0.05)
                outcome = caller.call("gettimeofday", timeout=2.0)
            assert outcome.first().ok
        finally:
            responder.close()
