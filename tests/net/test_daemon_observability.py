"""NodeDaemon observability sidecars: metrics endpoint, shards, flight."""

import asyncio
import json

import pytest

from repro import obs, trace
from repro.net.daemon import DaemonConfig, NodeDaemon
from repro.obs import flight
from repro.obs.crossnode import shard_path

pytestmark = pytest.mark.live


@pytest.fixture
def daemon(tmp_path):
    config = DaemonConfig(
        node_id="n0",
        peers={"n0": ("127.0.0.1", 0)},
        metrics_port=0,
        trace_dir=str(tmp_path / "tr"),
    )
    daemon = NodeDaemon(config)
    try:
        yield daemon
    finally:
        daemon.shutdown()
        obs.REGISTRY.disable()


def run_briefly(daemon, seconds=0.05):
    daemon.kernel.loop.run_until_complete(asyncio.sleep(seconds))


class TestStartObservability:
    def test_sidecars_come_up_and_shut_down(self, daemon, tmp_path):
        daemon.start_observability()
        run_briefly(daemon)  # let the endpoint's start task complete

        assert obs.REGISTRY.enabled
        assert flight.RECORDER.enabled
        assert trace.TRACER.enabled  # the shard writer is subscribed
        assert daemon._metrics_server is not None
        port = daemon._metrics_server.bound_port
        assert port

        async def fetch(path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\n\r\n".encode())
            await writer.drain()
            response = await reader.read()
            writer.close()
            return response.decode()

        body = daemon.kernel.loop.run_until_complete(fetch("/healthz"))
        assert "200 OK" in body and "ok" in body

        # An event emitted now lands in this node's shard.
        trace.emit("round.start", "n0", thread="t0", round=1, t=0.0)
        daemon.shutdown()
        assert not flight.RECORDER.enabled
        shard = shard_path(tmp_path / "tr", "n0")
        assert shard.exists()
        assert json.loads(shard.read_text().splitlines()[0])["round"] == 1

    def test_dump_flight_writes_an_artifact(self, daemon, tmp_path):
        daemon.start_observability()
        run_briefly(daemon)
        trace.emit("round.start", "n0", thread="t0", round=7, t=0.0)
        daemon._dump_flight("unit-test", context={"extra": "yes"})
        artifact_path = tmp_path / "tr" / "flight-n0-unit-test.json"
        assert artifact_path.exists()
        artifact = json.loads(artifact_path.read_text())
        assert artifact["reason"] == "unit-test"
        assert artifact["context"] == {"node": "n0", "extra": "yes"}
        assert any(e.get("round") == 7 for e in artifact["events"])

    def test_dump_flight_is_a_noop_when_tracing_off(self, tmp_path):
        config = DaemonConfig(node_id="n0",
                              peers={"n0": ("127.0.0.1", 0)})
        daemon = NodeDaemon(config)
        try:
            daemon.start_observability()
            assert daemon._metrics_server is None
            assert daemon._shard_writer is None
            daemon._dump_flight("never")
        finally:
            daemon.shutdown()
        assert list(tmp_path.glob("**/flight-*.json")) == []
