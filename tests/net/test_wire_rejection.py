"""Hostile datagrams against a live UDP port.

A bound port is exposed to arbitrary traffic; every malformed datagram —
truncation, foreign magic, stale wire versions, length lies — must be
counted and dropped without ever raising into the event loop.
"""

import socket
import struct

import pytest

from repro import obs
from repro.net.kernel import LiveKernel
from repro.net.udp import UdpTransport
from repro.net.wire import HEADER_SIZE, MAGIC, WIRE_VERSION, encode_frame

pytestmark = pytest.mark.live


@pytest.fixture
def live_port():
    kernel = LiveKernel()
    transport = UdpTransport(kernel.loop)
    received = []
    port = transport.attach("n0", received.append)
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        yield kernel, port, probe, received
    finally:
        probe.close()
        transport.close()
        kernel.close()


def pump(kernel, seconds=0.1):
    kernel.run(until=kernel.now + seconds)


def valid_frame():
    return encode_frame("stranger", {"kind": "probe"})


class TestFrameRejection:
    def test_truncated_header_is_counted_not_raised(self, live_port):
        kernel, port, probe, received = live_port
        probe.sendto(b"CT", port.address)                    # 2 of 7 bytes
        probe.sendto(valid_frame()[: HEADER_SIZE - 1], port.address)
        pump(kernel)
        assert port.frames_rejected == 2
        assert received == []

    def test_wrong_wire_version_rejected(self, live_port):
        kernel, port, probe, received = live_port
        data = bytearray(valid_frame())
        data[2] = WIRE_VERSION + 1
        probe.sendto(bytes(data), port.address)
        pump(kernel)
        assert port.frames_rejected == 1
        assert received == []

    def test_foreign_magic_rejected(self, live_port):
        kernel, port, probe, received = live_port
        data = bytearray(valid_frame())
        data[0:2] = b"XX"
        probe.sendto(bytes(data), port.address)
        pump(kernel)
        assert port.frames_rejected == 1

    def test_length_mismatch_rejected(self, live_port):
        kernel, port, probe, received = live_port
        oversized = valid_frame() + b"trailing-garbage"
        truncated_body = valid_frame()[:-3]
        probe.sendto(oversized, port.address)
        probe.sendto(truncated_body, port.address)
        pump(kernel)
        assert port.frames_rejected == 2
        assert received == []

    def test_header_lying_about_length_rejected(self, live_port):
        kernel, port, probe, received = live_port
        body = b"\x00" * 16
        lying = MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", 9999) + body
        probe.sendto(lying, port.address)
        pump(kernel)
        assert port.frames_rejected == 1

    def test_valid_frame_still_delivered_after_garbage(self, live_port):
        kernel, port, probe, received = live_port
        probe.sendto(b"\x00", port.address)
        probe.sendto(valid_frame(), port.address)
        pump(kernel)
        assert port.frames_rejected == 1
        assert port.frames_received == 1
        assert len(received) == 1
        assert received[0].src == "stranger"

    def test_rejections_land_in_the_metrics_registry(self, live_port):
        kernel, port, probe, received = live_port
        counter = obs.REGISTRY.counter("udp_datagrams_rejected_total")
        obs.REGISTRY.enable()
        try:
            before = counter.value(node="n0", reason="truncated")
            probe.sendto(b"CT", port.address)
            pump(kernel)
            after = counter.value(node="n0", reason="truncated")
        finally:
            obs.REGISTRY.disable()
        assert after == before + 1

    def test_rejection_reasons_are_tallied_per_port(self, live_port):
        kernel, port, probe, received = live_port
        probe.sendto(b"CT", port.address)                  # truncated header
        bad_magic = bytearray(valid_frame())
        bad_magic[0:2] = b"XX"
        probe.sendto(bytes(bad_magic), port.address)
        stale = bytearray(valid_frame())
        stale[2] = WIRE_VERSION + 1
        probe.sendto(bytes(stale), port.address)
        probe.sendto(valid_frame() + b"junk", port.address)
        pump(kernel)
        assert port.rejected_by_reason == {
            "truncated": 1, "magic": 1, "version": 1, "length": 1,
        }
        assert port.frames_rejected == 4
