"""LiveTestbed: the sim testbed API over real sockets and wall clocks.

The central claim: workload code written once against the testbed API
runs unmodified on either substrate.  ``clock_workload`` below is that
code — it is executed against both :class:`repro.Testbed` (simulated)
and :class:`repro.net.testbed.LiveTestbed` (UDP loopback, real time).
"""

import pytest

from repro import Testbed
from repro.net.testbed import LiveTestbed

from support import ClockApp  # noqa: E402 (tests/ on sys.path via conftest)

pytestmark = pytest.mark.live


def clock_workload(bed, calls: int = 4):
    """Deploy a replicated clock service, invoke it, return the values.

    Substrate-independent on purpose: everything here is TestbedBase
    API.  The replicas go on the last three nodes, the client on the
    first (on a 3-node bed the client shares its node with a replica,
    which the runtime supports).
    """
    bed.deploy("timesvc", ClockApp, nodes=bed.node_ids[-3:],
               style="active", time_source="cts")
    client = bed.client(bed.node_ids[0])
    bed.start()

    def scenario():
        values = []
        for _ in range(calls):
            result, _latency = yield from client.timed_call(
                "timesvc", "get_time", timeout=2.0)
            assert result.ok, result.error
            values.append(result.value)
        return values

    return bed.run_process(scenario())


class TestWorkloadPortability:
    def test_simulated_run(self):
        values = clock_workload(Testbed(num_nodes=4, seed=11))
        assert len(values) == 4
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_live_run(self):
        with LiveTestbed(num_nodes=3, seed=11) as bed:
            values = clock_workload(bed)
        assert len(values) == 4
        assert all(b > a for a, b in zip(values, values[1:]))


class TestLiveBasics:
    def test_nodes_get_distinct_ephemeral_ports(self):
        with LiveTestbed(num_nodes=3, seed=3) as bed:
            addresses = {bed.node(n).address for n in bed.node_ids}
            assert len(addresses) == 3
            assert all(port != 0 for _host, port in addresses)

    def test_wall_clocks_are_spread(self):
        with LiveTestbed(num_nodes=3, seed=5,
                         clock_epoch_spread_s=10.0) as bed:
            epochs = [bed.node(n).clock.epoch_us for n in bed.node_ids]
            assert len(set(epochs)) == 3

    def test_wait_until_polls_the_loop(self):
        with LiveTestbed(num_nodes=3, seed=7) as bed:
            bed.start(settle=0.2)
            elapsed = bed.wait_until(
                lambda: all(
                    len(bed.processors[n].members) == 3 for n in bed.node_ids
                ),
                timeout=8.0,
            )
            assert elapsed < 8.0
