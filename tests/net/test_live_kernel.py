"""LiveKernel: the simulator's event API on an asyncio loop."""

import pytest

from repro.errors import SimulationError
from repro.net.kernel import LiveKernel
from repro.sim.kernel import Event


@pytest.fixture
def kernel():
    k = LiveKernel()
    yield k
    k.close()


class TestClock:
    def test_now_starts_near_zero(self, kernel):
        assert 0.0 <= kernel.now < 0.1

    def test_now_advances_with_real_time(self, kernel):
        before = kernel.now
        kernel.run(until=kernel.now + 0.03)
        assert kernel.now - before >= 0.03


class TestScheduling:
    def test_schedule_fires_callback(self, kernel):
        fired = []
        kernel.schedule(0.01, lambda: fired.append(kernel.now))
        kernel.run(until=kernel.now + 0.05)
        assert len(fired) == 1
        assert fired[0] >= 0.01

    def test_schedule_ordering_preserved(self, kernel):
        order = []
        kernel.schedule(0.03, lambda: order.append("late"))
        kernel.schedule(0.01, lambda: order.append("early"))
        kernel.run(until=kernel.now + 0.06)
        assert order == ["early", "late"]

    def test_timeout_event_succeeds(self, kernel):
        results = []
        kernel.timeout(0.01, value="done")._add_callback(
            lambda event: results.append(event._value))
        kernel.run(until=kernel.now + 0.05)
        assert results == ["done"]


class TestRun:
    def test_run_requires_until(self, kernel):
        with pytest.raises(SimulationError, match="explicit 'until'"):
            kernel.run()

    def test_run_rejects_max_events(self, kernel):
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run(until=kernel.now + 0.01, max_events=10)

    def test_run_past_until_is_noop(self, kernel):
        kernel.run(until=kernel.now - 5.0)  # already in the past


class TestProcesses:
    def test_run_process_returns_value(self, kernel):
        def proc():
            yield kernel.timeout(0.01)
            return 42

        assert kernel.run_process(proc(), name="answer") == 42

    def test_run_process_propagates_failure(self, kernel):
        def proc():
            yield kernel.timeout(0.005)
            raise RuntimeError("scenario went wrong")

        with pytest.raises(RuntimeError, match="scenario went wrong"):
            kernel.run_process(proc())

    def test_run_process_timeout(self, kernel):
        def proc():
            yield Event(kernel)  # never triggered

        with pytest.raises(SimulationError, match="did not finish"):
            kernel.run_process(proc(), name="stuck", timeout=0.05)


class TestFailures:
    def test_unheeded_failure_raised_at_run_boundary(self, kernel):
        def proc():
            yield kernel.timeout(0.005)
            raise ValueError("nobody is watching")

        kernel.process(proc(), name="orphan")
        with pytest.raises(ValueError, match="nobody is watching"):
            kernel.run(until=kernel.now + 0.05)

    def test_drain_failures_clears_backlog(self, kernel):
        def proc():
            yield kernel.timeout(0.005)
            raise ValueError("drained instead")

        kernel.process(proc(), name="orphan")
        # Drive the loop directly, daemon-style, then drain.
        kernel.loop.run_until_complete(__import__("asyncio").sleep(0.05))
        failures = kernel.drain_failures()
        assert [type(f) for f in failures] == [ValueError]
        kernel.run(until=kernel.now + 0.01)  # nothing left to raise


class TestLifecycle:
    def test_close_is_idempotent(self):
        kernel = LiveKernel()
        kernel.close()
        kernel.close()
        assert kernel.loop.is_closed()
