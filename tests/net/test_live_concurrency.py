"""Concurrent gateway clients against a live 3-daemon group.

Eight independent ``LiveCaller`` sockets hammer a real 3-node daemon
deployment (``repro serve`` subprocesses over loopback UDP) at the same
time, so concurrent requests genuinely interleave in the total order and
the daemons' coalesced CCS rounds serve batches of them.  Checked, per
call: every replica answered the *same* value (agreement); per client:
group-clock reads strictly increase — including across a hard kill of
the ring leader mid-test.
"""

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import RpcTimeout
from repro.net.client import LiveCaller

pytestmark = pytest.mark.live

REPO_ROOT = Path(__file__).parents[2]
CLIENTS = 8
NODES = ("n0", "n1", "n2")


def _free_ports(count):
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
             for _ in range(count)]
    try:
        for sock in socks:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


class DaemonGroup:
    """Three ``repro serve`` subprocesses on loopback."""

    def __init__(self, tmp_path):
        ports = _free_ports(len(NODES))
        self.addresses = {node: ("127.0.0.1", port)
                          for node, port in zip(NODES, ports)}
        peers = ",".join(f"{node}=127.0.0.1:{port}"
                         for node, port in zip(NODES, ports))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        self.logs = {}
        self.procs = {}
        for node in NODES:
            log = open(tmp_path / f"{node}.log", "wb")
            self.logs[node] = log
            self.procs[node] = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--node", node, "--peers", peers],
                env=env, cwd=str(REPO_ROOT),
                stdout=log, stderr=log,
            )

    def servers(self, *nodes):
        return [self.addresses[node] for node in nodes]

    def kill(self, node):
        self.procs[node].kill()
        self.procs[node].wait()

    def shutdown(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs.values():
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for log in self.logs.values():
            log.close()


def wait_for_group(servers, expect_replies, timeout_s=25.0):
    """Poll until the group answers with ``expect_replies`` replies."""
    deadline = time.monotonic() + timeout_s
    with LiveCaller(servers, client_id="probe-%d" % expect_replies) as probe:
        while time.monotonic() < deadline:
            try:
                outcome = probe.call("gettimeofday", timeout=1.0,
                                     expect_replies=expect_replies)
                if len(outcome.results) >= expect_replies:
                    return
            except RpcTimeout:
                pass
            time.sleep(0.2)
    raise AssertionError(
        f"group did not answer with {expect_replies} replies "
        f"within {timeout_s}s")


class GatewayClient:
    """One gateway client socket; each phase runs in its own thread."""

    def __init__(self, index, servers):
        self.name = f"live-client-{index}"
        self.caller = LiveCaller(servers, client_id=f"cc{index}")
        self.values = []
        self.disagreements = []
        self.error = None
        self.thread = None

    def run_phase(self, calls, expect_replies, servers=None):
        if servers is not None:
            self.caller.servers = list(servers)
        self.thread = threading.Thread(
            target=self._run, args=(calls, expect_replies),
            name=self.name, daemon=True)
        self.thread.start()

    def join(self, timeout):
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), f"{self.name} hung"
        if self.error:
            raise self.error

    def _run(self, calls, expect_replies):
        try:
            done = attempts = 0
            while done < calls and attempts < calls * 6:
                attempts += 1
                try:
                    outcome = self.caller.call(
                        "gettimeofday", timeout=2.0,
                        expect_replies=expect_replies)
                except RpcTimeout:
                    continue  # failover in progress; retry
                if len(outcome.results) < expect_replies:
                    continue
                if not outcome.agreed:
                    self.disagreements.append(outcome.values)
                self.values.append(outcome.first().value["micros"])
                done += 1
            assert done == calls, f"{self.name} completed {done}/{calls}"
        except BaseException as error:  # surfaced by the main thread
            self.error = error


def test_concurrent_gateway_clients_with_leader_kill(tmp_path):
    group = DaemonGroup(tmp_path)
    clients = []
    try:
        wait_for_group(group.servers(*NODES), expect_replies=3)

        # Phase 1: all clients in parallel against the full group.
        clients = [GatewayClient(i, group.servers(*NODES))
                   for i in range(CLIENTS)]
        for client in clients:
            client.run_phase(calls=5, expect_replies=3)
        for client in clients:
            client.join(timeout=60)

        # Kill the ring leader; the survivors keep serving.
        group.kill("n0")
        wait_for_group(group.servers("n1", "n2"), expect_replies=2)

        # Phase 2: same callers, so monotonicity spans the kill.
        for client in clients:
            client.run_phase(calls=4, expect_replies=2,
                             servers=group.servers("n1", "n2"))
        for client in clients:
            client.join(timeout=60)

        for client in clients:
            # Same-operation replies were identical on every replica...
            assert not client.disagreements, client.disagreements
            # ...and one client's reads strictly increase across the
            # whole run, leader kill included.
            assert len(client.values) == 9
            assert all(b > a for a, b in
                       zip(client.values, client.values[1:])), client.values
    finally:
        for client in clients:
            client.caller.close()
        group.shutdown()
