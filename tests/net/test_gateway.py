"""ClientGateway idempotency: retries replay, they never re-execute."""

from repro.net.daemon import ClientGateway
from repro.net.udp import LiveFrame
from repro.replication.envelope import MsgType, make_envelope
from repro.rpc.messages import Invocation, Result


class FakeEndpoint:
    def __init__(self):
        self.joined = False
        self.mcasts = []
        self.on_message = None

    def join(self):
        self.joined = True

    def mcast(self, envelope):
        self.mcasts.append(envelope)


class FakeRuntime:
    def __init__(self):
        self.endpoints = {}

    def endpoint(self, group):
        endpoint = self.endpoints.setdefault(group, FakeEndpoint())
        return endpoint


class FakePort:
    def __init__(self):
        self.sent = []  # (addr, envelope)

    def sendto(self, addr, envelope):
        self.sent.append((addr, envelope))


def request(seq, conn_id=1, client="c1", group="timesvc"):
    return make_envelope(MsgType.REQUEST, f"client.{client}", group,
                         conn_id, seq, client,
                         body=Invocation("gettimeofday", ()))


def reply(seq, conn_id=1, client="c1", sender="n0", value=123):
    return make_envelope(MsgType.REPLY, "timesvc", f"client.{client}",
                         conn_id, seq, sender, body=Result(value=value))


ADDR_A = ("127.0.0.1", 40001)
ADDR_B = ("127.0.0.1", 40002)


def make_gateway():
    runtime, port = FakeRuntime(), FakePort()
    return ClientGateway(runtime, port, node_id="n0"), runtime, port


class TestGatewayDedup:
    def test_first_request_enters_the_order(self):
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        endpoint = runtime.endpoints["client.c1"]
        assert endpoint.joined
        assert len(endpoint.mcasts) == 1
        assert gateway.requests_injected == 1
        assert gateway.requests_deduplicated == 0

    def test_retry_of_inflight_op_is_not_reinjected(self):
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))  # retry
        assert len(runtime.endpoints["client.c1"].mcasts) == 1
        assert gateway.requests_deduplicated == 1
        assert port.sent == []  # nothing answered yet, nothing to replay

    def test_retry_after_reply_replays_the_recorded_answer(self):
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        answer = reply(1)
        runtime.endpoints["client.c1"].on_message(answer)
        assert port.sent == [(ADDR_A, answer)]

        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))  # retry
        assert len(runtime.endpoints["client.c1"].mcasts) == 1  # no re-exec
        assert port.sent == [(ADDR_A, answer), (ADDR_A, answer)]
        assert gateway.replies_replayed == 1
        assert gateway.replies_forwarded == 1

    def test_retry_refreshes_the_reply_route(self):
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        runtime.endpoints["client.c1"].on_message(reply(1))
        # The client rebound its socket; the retry carries the new addr.
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_B))
        assert port.sent[-1][0] == ADDR_B

    def test_distinct_ops_are_not_confused(self):
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        gateway.handle(LiveFrame("c1", request(2), 64, ADDR_A))
        gateway.handle(LiveFrame("c1", request(2, conn_id=2), 64, ADDR_A))
        assert len(runtime.endpoints["client.c1"].mcasts) == 3
        assert gateway.requests_deduplicated == 0

    def test_same_seq_to_different_groups_is_not_a_retry(self):
        # A migrating client reuses its (conn, seq) counters against its
        # new home shard.  The operation id is keyed by the destination
        # group too, so the second request must execute, not replay.
        gateway, runtime, port = make_gateway()
        gateway.handle(LiveFrame("c1", request(1, group="shard0"), 64, ADDR_A))
        gateway.handle(LiveFrame("c1", request(1, group="shard1"), 64, ADDR_A))
        assert gateway.requests_injected == 2
        assert gateway.requests_deduplicated == 0
        # Both rode the same client group endpoint: two distinct mcasts.
        assert len(runtime.endpoints["client.c1"].mcasts) == 2

    def test_window_eviction_forgets_oldest(self):
        gateway, runtime, port = make_gateway()
        for seq in range(1, ClientGateway.DEDUP_WINDOW + 2):
            gateway.handle(LiveFrame("c1", request(seq), 64, ADDR_A))
        # seq 1 was evicted: its retry is treated as new and re-injected.
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        assert gateway.requests_deduplicated == 0
        assert gateway.requests_injected == ClientGateway.DEDUP_WINDOW + 2
        # One eviction for the overflow insert, one more when the
        # re-executed op 1 pushed the window over again.
        assert gateway.dedup_evictions == 2


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_timed_gateway():
    runtime, port, clock = FakeRuntime(), FakePort(), FakeClock()
    gateway = ClientGateway(runtime, port, node_id="n0", clock=clock)
    return gateway, runtime, port, clock


class TestGatewayWindowBounds:
    """The idempotency window is bounded by age as well as count."""

    def test_stale_ops_expire_after_the_ttl(self):
        gateway, runtime, port, clock = make_timed_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        clock.now = ClientGateway.DEDUP_TTL_S + 1.0
        # Any traffic sweeps the expired entry out...
        gateway.handle(LiveFrame("c1", request(2), 64, ADDR_A))
        assert gateway.dedup_evictions == 1
        # ...so a (pathologically late) retry of op 1 re-executes.
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        assert gateway.requests_deduplicated == 0
        assert gateway.requests_injected == 3

    def test_retry_refreshes_the_ttl(self):
        gateway, runtime, port, clock = make_timed_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        clock.now = ClientGateway.DEDUP_TTL_S - 1.0
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))  # retry
        assert gateway.requests_deduplicated == 1
        # One TTL after the *retry*, not the original: still remembered.
        clock.now += ClientGateway.DEDUP_TTL_S - 1.0
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        assert gateway.requests_deduplicated == 2
        assert gateway.dedup_evictions == 0

    def test_fresh_ops_survive_the_sweep(self):
        gateway, runtime, port, clock = make_timed_gateway()
        gateway.handle(LiveFrame("c1", request(1), 64, ADDR_A))
        clock.now = ClientGateway.DEDUP_TTL_S + 1.0
        gateway.handle(LiveFrame("c1", request(2), 64, ADDR_A))
        clock.now += 1.0
        gateway.handle(LiveFrame("c1", request(2), 64, ADDR_A))  # retry
        assert gateway.requests_deduplicated == 1
        assert gateway.dedup_evictions == 1  # only op 1 aged out

    def test_route_table_is_lru_bounded(self):
        gateway, runtime, port, clock = make_timed_gateway()
        for i in range(ClientGateway.ROUTES_CAP + 5):
            gateway.handle(LiveFrame("c", request(1, client=f"c{i}"), 64, ADDR_A))
        assert len(gateway.routes) == ClientGateway.ROUTES_CAP
        assert "client.c0" not in gateway.routes
