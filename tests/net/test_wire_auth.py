"""Wire-frame authentication: the MAC field and its failure modes.

The authenticated Byzantine mode requires every ring frame to carry a
key id + nonce + truncated-HMAC field behind the v3 flags byte.  These
tests pin the negative paths — truncated, forged, and replayed MAC
fields must be rejected with *distinct* ``FrameError.reason`` codes that
feed the per-reason rejection counters on a live port — and the
compatibility paths: v3 frames without a MAC still decode when auth is
off, a signed frame decodes on an unauthenticated receiver (the field is
parsed and skipped), and the bare-envelope client channel stays exempt
even on an authenticated receiver.
"""

import socket
import struct

import pytest

from repro.errors import FrameError
from repro.net.auth import AUTH_FIELD_SIZE, WireAuthenticator
from repro.net.kernel import LiveKernel
from repro.net.udp import UdpTransport
from repro.net.wire import (
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    decode_frame,
    decode_frame_ex,
    encode_frame,
)
from repro.replication.envelope import Envelope, MsgType, make_envelope
from repro.totem.messages import RingBeacon, RingId

pytestmark = pytest.mark.live

SECRET = "test-group-secret"


def signer() -> WireAuthenticator:
    return WireAuthenticator.from_secret(SECRET)


def beacon() -> RingBeacon:
    return RingBeacon(RingId(3, "n0"), "n0")


def client_envelope() -> Envelope:
    return make_envelope(MsgType.REQUEST, "client-1", "timesvc", 1, 1,
                         "c0", {"method": "gettimeofday"})


class TestSignedRoundtrip:
    def test_signed_frame_verifies_and_decodes(self):
        sender, receiver = signer(), signer()
        data = encode_frame("n0", beacon(), None, sender)
        src, payload, _ = decode_frame_ex(data, auth=receiver, auth_node="n1")
        assert src == "n0"
        assert payload == beacon()
        assert sender.frames_signed == 1
        assert receiver.frames_verified == 1

    def test_nonces_strictly_increase_per_sender(self):
        sender, receiver = signer(), signer()
        for _ in range(3):
            data = encode_frame("n0", beacon(), None, sender)
            decode_frame_ex(data, auth=receiver, auth_node="n1")
        assert receiver.frames_verified == 3

    def test_receive_watermarks_are_per_receiver(self):
        # The in-process testbed shares one verifier among all nodes:
        # the same datagram may legitimately reach several receivers
        # (multicast reuses one signed buffer), so watermarks must be
        # keyed (receiver, sender).
        sender, receiver = signer(), signer()
        data = encode_frame("n0", beacon(), None, sender)
        decode_frame_ex(data, auth=receiver, auth_node="n1")
        decode_frame_ex(data, auth=receiver, auth_node="n2")  # not a replay


class TestNegativePaths:
    def test_missing_mac_on_ring_frame_rejected(self):
        receiver = signer()
        data = encode_frame("n0", beacon())  # v3, no auth field
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(data, auth=receiver, auth_node="n1")
        assert exc.value.reason == "auth-missing"

    def test_client_envelope_exempt_from_auth(self):
        receiver = signer()
        data = encode_frame("client", client_envelope())
        src, payload, _ = decode_frame_ex(data, auth=receiver,
                                          auth_node="n1")
        assert src == "client"
        assert payload.sender == "c0"

    def test_truncated_auth_field_rejected(self):
        # Hand-build a frame whose auth flag promises a field the body
        # cannot hold.
        src_field = struct.pack("<H", 2) + b"n0"
        body = src_field + bytes([0x02]) + b"\x00" * 5
        data = MAGIC + bytes([WIRE_VERSION]) + struct.pack("<I", len(body)) + body
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(data, auth=signer(), auth_node="n1")
        assert exc.value.reason == "auth-truncated"

    def test_tampered_payload_rejected_as_forged(self):
        data = bytearray(encode_frame("n0", beacon(), None, signer()))
        data[-1] ^= 0xFF  # flip one payload byte; length stays right
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(bytes(data), auth=signer(), auth_node="n1")
        assert exc.value.reason == "auth-forged"

    def test_unknown_key_id_rejected_as_forged(self):
        sender = signer()
        data = bytearray(encode_frame("n0", beacon(), None, sender))
        # The auth field sits right after src (2+2 bytes) + flags (1).
        key_id_offset = HEADER_SIZE + 4 + 1
        data[key_id_offset] = 7  # no such key in the ring
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(bytes(data), auth=signer(), auth_node="n1")
        assert exc.value.reason == "auth-forged"

    def test_wrong_secret_rejected_as_forged(self):
        data = encode_frame("n0", beacon(), None, signer())
        outsider = WireAuthenticator.from_secret("some-other-secret")
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(data, auth=outsider, auth_node="n1")
        assert exc.value.reason == "auth-forged"

    def test_replayed_frame_rejected(self):
        receiver = signer()
        data = encode_frame("n0", beacon(), None, signer())
        decode_frame_ex(data, auth=receiver, auth_node="n1")
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(data, auth=receiver, auth_node="n1")
        assert exc.value.reason == "auth-replay"

    def test_stale_nonce_rejected_even_unreplayed(self):
        # Reordering: frame 2 arrives before frame 1; the strict
        # watermark rejects frame 1 as a replay (degrades to a drop).
        sender, receiver = signer(), signer()
        first = encode_frame("n0", beacon(), None, sender)
        second = encode_frame("n0", beacon(), None, sender)
        decode_frame_ex(second, auth=receiver, auth_node="n1")
        with pytest.raises(FrameError) as exc:
            decode_frame_ex(first, auth=receiver, auth_node="n1")
        assert exc.value.reason == "auth-replay"


class TestCompatibility:
    def test_unauthenticated_v3_frame_decodes_when_auth_off(self):
        data = encode_frame("n0", beacon())
        src, payload = decode_frame(data)
        assert (src, payload) == ("n0", beacon())

    def test_signed_frame_decodes_on_unauthenticated_receiver(self):
        data = encode_frame("n0", beacon(), None, signer())
        src, payload = decode_frame(data)  # field parsed and skipped
        assert (src, payload) == ("n0", beacon())

    def test_auth_field_length_matches_wire_layout(self):
        plain = encode_frame("n0", beacon())
        authed = encode_frame("n0", beacon(), None, signer())
        assert len(authed) - len(plain) == AUTH_FIELD_SIZE


class TestPortCounters:
    """Auth failures must land in the live port's per-reason tallies."""

    @pytest.fixture
    def authed_port(self):
        kernel = LiveKernel()
        transport = UdpTransport(kernel.loop, auth=signer())
        received = []
        port = transport.attach("n0", received.append)
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            yield kernel, port, probe, received
        finally:
            probe.close()
            transport.close()
            kernel.close()

    @staticmethod
    def pump(kernel, seconds=0.1):
        kernel.run(until=kernel.now + seconds)

    def test_each_auth_reason_tallied_distinctly(self, authed_port):
        kernel, port, probe, received = authed_port
        probe.sendto(encode_frame("liar", beacon()), port.address)
        signed = encode_frame("liar", beacon(), None, signer())
        probe.sendto(signed, port.address)        # verifies (delivered)
        probe.sendto(signed, port.address)        # replay of the same
        forged = bytearray(encode_frame("liar", beacon(), None, signer()))
        forged[-1] ^= 0xFF
        probe.sendto(bytes(forged), port.address)
        self.pump(kernel)
        assert port.rejected_by_reason["auth-missing"] == 1
        assert port.rejected_by_reason["auth-replay"] == 1
        assert port.rejected_by_reason["auth-forged"] == 1
        assert port.frames_rejected == 3
        assert len(received) == 1  # the valid signed frame got through
