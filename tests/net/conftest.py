"""Fixtures for the live-networking suite."""

import socket

import pytest


@pytest.fixture
def port_allocator():
    """Hand out currently-free UDP ports on 127.0.0.1.

    Binding to port 0 and reading the assigned port back keeps parallel
    test runs from colliding on hard-coded port numbers.  (The port is
    released before it is handed out, so a tiny race with other local
    processes remains — acceptable for tests.)
    """

    def allocate(count: int = 1):
        sockets, ports = [], []
        try:
            for _ in range(count):
                sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sock.bind(("127.0.0.1", 0))
                sockets.append(sock)
                ports.append(sock.getsockname()[1])
        finally:
            for sock in sockets:
                sock.close()
        return ports

    return allocate
