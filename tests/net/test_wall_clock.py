"""WallClock: the simulated hardware clock over a real time base."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.net.clock import MonotonicTimeBase, WallClock
from repro.net.kernel import LiveKernel
from repro.sim.clock import US_PER_SEC


class FakeTimeBase:
    """A controllable stand-in for the monotonic clock."""

    def __init__(self):
        self.now = 0.0


class TestWithFakeBase:
    def test_epoch_offset_applied(self):
        clock = WallClock(FakeTimeBase(), epoch_us=5_000_000)
        assert clock.read_us() == 5_000_000

    def test_advances_with_base(self):
        base = FakeTimeBase()
        clock = WallClock(base)
        base.now = 2.5
        assert clock.read_us() == int(2.5 * US_PER_SEC)

    def test_drift_rate_applied(self):
        base = FakeTimeBase()
        clock = WallClock(base, drift_ppm=100.0)
        base.now = 100.0
        # +100 ppm over 100 s = +10 ms.
        assert clock.read_us() == 100 * US_PER_SEC + 10_000

    def test_granularity_quantizes(self):
        base = FakeTimeBase()
        clock = WallClock(base, granularity_us=1000)
        base.now = 0.0123456
        assert clock.read_us() % 1000 == 0

    def test_bad_granularity_rejected(self):
        with pytest.raises(ConfigurationError):
            WallClock(FakeTimeBase(), granularity_us=0)


class TestRealTime:
    def test_monotonic_base_tracks_wall(self):
        base = MonotonicTimeBase()
        first = base.now
        time.sleep(0.02)
        assert base.now - first >= 0.02

    def test_clock_advances_in_real_time(self):
        clock = WallClock()
        first = clock.read_us()
        time.sleep(0.02)
        second = clock.read_us()
        assert second - first >= 20_000
        assert second - first < 2_000_000  # sanity: not wildly off

    def test_readings_never_regress(self):
        clock = WallClock(drift_ppm=-200.0)
        readings = [clock.read_us() for _ in range(200)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_kernel_time_base_shares_zero(self):
        kernel = LiveKernel()
        try:
            clock = WallClock(kernel)
            # Both started "now"; the clock reading should be close to
            # kernel-elapsed time (no epoch injected).
            assert abs(clock.read_us() - kernel.now * US_PER_SEC) < 50_000
        finally:
            kernel.close()
