"""The circuit breaker's half-open state admits a single probe.

Regression tests for the probe-token race: a tripped breaker past its
cooldown used to admit a probe on *every* sweep, so several concurrent
callers (or successive sweeps of one call) would all hammer the
recovering server at once.  The token (``_Breaker.probing``) must be
taken by exactly one sweep and released only when the probe resolves —
or when it lapses, if the claiming call died before sending it.

These drive ``_sweep_order`` / ``_record_*`` directly; no packets move.
"""

import threading
import time

from repro.net.client import LiveCaller

ADDR = ("127.0.0.1", 45999)


def tripped_caller() -> LiveCaller:
    caller = LiveCaller([ADDR], client_id="probe-test")
    for _ in range(LiveCaller.BREAKER_THRESHOLD):
        caller._record_failure(ADDR)
    return caller


def half_open_instant() -> float:
    """A ``now`` at which the tripped breaker's cooldown has elapsed."""
    return time.monotonic() + LiveCaller.BREAKER_COOLDOWN + 0.01


class TestSingleProbeToken:
    def test_second_sweep_during_half_open_is_skipped(self):
        caller = tripped_caller()
        try:
            now = half_open_instant()
            assert caller._sweep_order(now) == [ADDR]  # takes the token
            assert caller._sweep_order(now) == []      # token already held
            assert caller.stats.breaker_skips == 1
        finally:
            caller.close()

    def test_probe_failure_releases_the_token_and_reopens(self):
        caller = tripped_caller()
        try:
            now = half_open_instant()
            assert caller._sweep_order(now) == [ADDR]
            caller._record_failure(ADDR)  # the probe timed out
            # Breaker is open again: skipped until the next cooldown...
            assert caller._sweep_order(time.monotonic()) == []
            # ...after which a fresh probe is admitted.
            assert caller._sweep_order(half_open_instant()) == [ADDR]
        finally:
            caller.close()

    def test_probe_success_closes_the_breaker(self):
        caller = tripped_caller()
        try:
            assert caller._sweep_order(half_open_instant()) == [ADDR]
            caller._record_success(ADDR)
            # Fully closed: every sweep lists the server again.
            assert caller._sweep_order(time.monotonic()) == [ADDR]
            assert caller._sweep_order(time.monotonic()) == [ADDR]
        finally:
            caller.close()

    def test_orphaned_token_lapses_after_cooldown(self):
        """If the claiming call hits its deadline before sending the
        probe, the token must not wedge the server out of rotation
        forever — it expires one cooldown after it was taken."""
        caller = tripped_caller()
        try:
            claimed_at = half_open_instant()
            assert caller._sweep_order(claimed_at) == [ADDR]
            # The claimer vanished without recording an outcome.
            assert caller._sweep_order(claimed_at) == []
            lapsed = claimed_at + LiveCaller.BREAKER_COOLDOWN
            assert caller._sweep_order(lapsed) == [ADDR]
        finally:
            caller.close()

    def test_concurrent_sweeps_admit_exactly_one_probe(self):
        caller = tripped_caller()
        try:
            now = half_open_instant()
            admitted = []
            barrier = threading.Barrier(8)

            def sweep():
                barrier.wait()
                admitted.append(caller._sweep_order(now))

            threads = [threading.Thread(target=sweep) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sum(1 for order in admitted if ADDR in order) == 1
            assert caller.stats.breaker_skips == 7
        finally:
            caller.close()
