"""Loopback smoke test: a 3-node group over real UDP, with failover.

The acceptance scenario for live mode: group-clock reads stay identical
across replicas and monotonically increasing, including across a forced
kill of the ring leader.  Kept under ~10 s of wall time.
"""

import pytest

from repro.net.testbed import LiveTestbed
from repro.net.timing import live_totem_config

from support import ClockApp, call_n  # noqa: E402 (tests/ on sys.path via conftest)

pytestmark = pytest.mark.live


def group_clock_values(bed, group):
    """Every live replica's last decided group clock value."""
    return {
        node_id: replica.time_source.clock_state.last_group_us
        for node_id, replica in bed.replicas(group).items()
    }


def test_three_node_loopback_with_leader_kill():
    with LiveTestbed(num_nodes=3, seed=42) as bed:
        bed.deploy("timesvc", ClockApp, nodes=bed.node_ids,
                   style="active", time_source="cts")
        client = bed.client("n2")
        bed.start(settle=0.5)
        bed.wait_until(
            lambda: all(
                len(bed.processors[n].members) == 3 for n in bed.node_ids
            ),
            timeout=8.0,
        )

        before = call_n(bed, client, "timesvc", "get_time", 4)
        assert all(b > a for a, b in zip(before, before[1:]))
        # Rounds settle, then every replica agrees on the decision.
        bed.run(0.1)
        decided = group_clock_values(bed, "timesvc")
        assert len(set(decided.values())) == 1, decided

        # Kill the ring leader (the representative, first ring member).
        leader = bed.processors["n2"].members[0]
        assert leader != "n2", "client node must survive this scenario"
        bed.crash(leader)
        bed.wait_until(
            lambda: len(bed.processors["n2"].members) == 2, timeout=8.0)

        after = call_n(bed, client, "timesvc", "get_time", 4)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))
        bed.run(0.1)
        decided = group_clock_values(bed, "timesvc")
        assert len(decided) == 2  # crashed node dropped from the group
        assert len(set(decided.values())) == 1, decided


def test_live_totem_config_validates():
    config = live_totem_config()
    assert config.token_loss_timeout_s > config.token_retransmit_timeout_s
