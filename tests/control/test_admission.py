"""Unit tests for the admission controller (no testbed, fake clock)."""

from repro.control.admission import (
    OVERLOADED,
    AdmissionConfig,
    AdmissionController,
    is_overloaded,
    overloaded_value,
    retry_after_of,
)
from repro.rpc.messages import Result


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class Harness:
    """Records which of the two callbacks fired, per op key."""

    def __init__(self, controller: AdmissionController):
        self.controller = controller
        self.dispatched = []
        self.shed = []  # (key, retry_after_s)

    def submit(self, client: str, key) -> bool:
        return self.controller.submit(
            client, key,
            lambda: self.dispatched.append(key),
            lambda ra: self.shed.append((key, ra)))


def make(clock=None, **overrides) -> Harness:
    config = AdmissionConfig(
        max_inflight=2, max_global_queue=4, max_client_queue=2,
        max_queue_delay_s=0.25, inflight_timeout_s=5.0)
    for name, value in overrides.items():
        setattr(config, name, value)
    controller = AdmissionController(
        config, node_id="t", clock=clock or FakeClock())
    return Harness(controller)


class TestFastPath:
    def test_dispatches_while_pipeline_has_room(self):
        h = make()
        assert h.submit("a", 1) and h.submit("a", 2)
        assert h.dispatched == [1, 2]
        assert h.controller.inflight == 2
        assert h.controller.stats.admitted == 2

    def test_excess_parks_and_pumps_on_complete(self):
        h = make()
        h.submit("a", 1)
        h.submit("a", 2)
        h.submit("a", 3)  # pipeline full -> parked
        assert h.dispatched == [1, 2]
        assert h.controller.queue_depth == 1
        h.controller.complete(1)
        assert h.dispatched == [1, 2, 3]
        assert h.controller.queue_depth == 0
        assert h.controller.stats.queued == 1

    def test_complete_is_idempotent(self):
        h = make()
        h.submit("a", 1)
        h.controller.complete(1)
        h.controller.complete(1)
        assert h.controller.stats.completed == 1


class TestShedding:
    def test_global_queue_bound(self):
        h = make()
        for i in range(2 + 4):  # fill pipeline, then the global queue
            h.submit(f"c{i}", i)
        assert h.submit("late", 99) is False
        assert [key for key, _ in h.shed] == [99]
        assert h.shed[0][1] > 0.0
        assert h.controller.stats.shed == {"global_full": 1}

    def test_per_client_queue_bound(self):
        h = make()
        h.submit("a", 1)
        h.submit("a", 2)
        h.submit("a", 3)
        h.submit("a", 4)  # a's queue now at max_client_queue=2
        assert h.submit("a", 5) is False
        assert h.controller.stats.shed == {"client_full": 1}
        # Another identity still gets a slot.
        assert h.submit("b", 6) is True
        assert h.controller.queue_depth == 3

    def test_deadline_estimate_sheds_before_queueing(self):
        # One-wide pipeline, tiny budget: with the default 50ms service
        # EWMA, any op that must wait for the pipeline to drain is
        # already predicted to miss its deadline — shed at arrival, not
        # after the wait.
        h = make(max_inflight=1, max_queue_delay_s=0.04,
                 max_global_queue=100, max_client_queue=100)
        h.submit("a", 1)  # dispatched
        assert h.submit("a", 2) is False
        assert h.controller.stats.shed == {"deadline": 1}
        # A roomier budget parks instead.
        roomy = make(max_inflight=1, max_queue_delay_s=0.2,
                     max_global_queue=100, max_client_queue=100)
        roomy.submit("a", 1)
        assert roomy.submit("a", 2) is True
        assert roomy.controller.queue_depth == 1

    def test_parked_ops_age_out(self):
        clock = FakeClock()
        h = make(clock=clock)
        h.submit("a", 1)
        h.submit("a", 2)
        h.submit("a", 3)  # parked
        clock.advance(1.0)  # way past max_queue_delay_s
        h.controller.complete(1)
        assert 3 not in h.dispatched
        assert h.controller.stats.shed == {"aged_out": 1}

    def test_retry_after_respects_floor_and_cap(self):
        h = make(retry_after_floor_s=0.05, retry_after_cap_s=2.0)
        assert h.controller.retry_after_s() >= 0.05
        for i in range(6):
            h.submit("a", i)
        h.controller._service_ewma_s = 60.0  # pathological service time
        assert h.controller.retry_after_s() == 2.0


class TestFairness:
    def test_round_robin_across_clients(self):
        h = make(max_inflight=1, max_queue_delay_s=100.0)
        h.submit("a", "a0")  # inflight
        for key in ("a1", "a2"):
            h.submit("a", key)
        h.submit("b", "b1")
        # Drain one at a time: b's single op must not wait behind all of
        # a's backlog.
        h.controller.complete("a0")
        h.controller.complete("a1")
        assert h.dispatched == ["a0", "a1", "b1"]


class TestInflightReclaim:
    def test_lost_replies_do_not_wedge_admission(self):
        clock = FakeClock()
        h = make(clock=clock)
        h.submit("a", 1)
        h.submit("a", 2)  # pipeline full, replies never arrive
        clock.advance(6.0)  # past inflight_timeout_s
        assert h.submit("b", 3) is True
        assert 3 in h.dispatched
        assert h.controller.stats.reclaimed == 2


class TestOverloadedResult:
    def test_round_trip_through_result(self):
        shed = Result(value=overloaded_value(0.123456), error=OVERLOADED)
        assert is_overloaded(shed)
        assert retry_after_of(shed) == 0.1235
        ok = Result(value={"micros": 1}, error=None)
        assert not is_overloaded(ok)
        assert retry_after_of(ok) == 0.0

    def test_dict_form(self):
        assert is_overloaded({"error": OVERLOADED, "value": {}})
        assert retry_after_of(
            {"error": OVERLOADED, "value": {"retry_after_s": 0.5}}) == 0.5
