"""Live reconfiguration on the simulated testbed: join, drain, restart."""

import pytest

from repro.control import ControlPlane, ReconfigurationError

from ..support import ClockApp, CounterApp, call_n, make_testbed


def make_plane(bed, **kwargs):
    kwargs.setdefault("group", "svc")
    kwargs.setdefault("time_source", "local")
    return ControlPlane(bed, **kwargs)


class TestJoin:
    def test_cold_replica_joins_and_serves(self):
        bed = make_testbed(seed=40)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 5)

        plane = make_plane(bed, app_factory=CounterApp)
        joiner = plane.join("n3")
        assert joiner.state_transfer.ready
        assert joiner.app.count == 5
        assert plane.serving() == ["n1", "n2", "n3"]
        for node_id in ("n1", "n2", "n3"):
            assert "n3" in plane.view_members(node_id)
        # The joiner executes subsequent ordered work.
        call_n(bed, client, "svc", "increment", 2)
        bed.run(0.2)
        assert joiner.app.count == 7

    def test_join_is_idempotent(self):
        bed = make_testbed(seed=41)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        existing = bed.replicas("svc")["n1"]
        assert plane.join("n1") is existing
        assert plane.log == []

    def test_join_with_cts_rounds(self):
        """A CTS joiner is not 'caught up' until it has won fresh rounds
        of its own (the tentpole's shadow-then-serve gate)."""
        bed = make_testbed(seed=42)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 3)

        plane = make_plane(bed, app_factory=ClockApp, time_source="cts")

        # Rounds are request-driven: keep traffic flowing while the
        # control plane waits for the joiner to win rounds of its own.
        def traffic():
            for _ in range(200):
                result, _latency = yield from client.timed_call(
                    "svc", "get_time", timeout=2.0)
                assert result.ok, result.error

        bed.sim.process(traffic(), name="join-traffic")
        joiner = plane.join("n3", require_rounds=2)
        assert joiner.state_transfer.ready
        assert joiner.time_source.stats.rounds_completed >= 2
        values = call_n(bed, client, "svc", "get_time", 3)
        assert values == sorted(values)


class TestDrain:
    def test_drain_retires_replica_without_breaking_group(self):
        bed = make_testbed(seed=43)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"],
                   time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 3)

        plane = make_plane(bed, app_factory=CounterApp)
        drained = bed.replicas("svc")["n2"]
        plane.drain("n2")
        assert plane.serving() == ["n1", "n3"]
        assert drained.suspended
        for node_id in ("n1", "n3"):
            assert "n2" not in plane.view_members(node_id)
        # Clients keep getting answers from the survivors.
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [4, 5]
        bed.run(0.2)
        assert drained.app.count == 3  # retired replica saw nothing new

    def test_drain_primary_hands_over(self):
        """Draining the view's first member (the primary under
        deterministic succession) must not stall ordering."""
        bed = make_testbed(seed=44)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"],
                   time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 2)
        plane = make_plane(bed, app_factory=CounterApp)
        primary = plane.view_members("n1")[0]
        plane.drain(primary)
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [3, 4]

    def test_refuses_to_drain_last_replica(self):
        bed = make_testbed(seed=45)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        with pytest.raises(ReconfigurationError):
            plane.drain("n1")

    def test_refuses_to_drain_non_member(self):
        bed = make_testbed(seed=46)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        with pytest.raises(ReconfigurationError):
            plane.drain("n3")

    def test_drained_node_can_rejoin(self):
        bed = make_testbed(seed=47)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"],
                   time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 2)
        plane = make_plane(bed, app_factory=CounterApp)
        plane.drain("n3")
        call_n(bed, client, "svc", "increment", 2)
        rejoined = plane.join("n3")
        assert rejoined.state_transfer.ready
        assert rejoined.app.count == 4
        assert [entry["op"] for entry in plane.log] == ["drain", "join"]


class TestAsyncHooks:
    def test_drain_async_finalizes_after_grace(self):
        bed = make_testbed(seed=48)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"],
                   time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        assert plane.drain_async("n2") is True
        assert "n2" in plane.serving()  # not yet finalized
        bed.run(1.0)
        assert plane.serving() == ["n1", "n3"]

    def test_drain_async_refuses_unsafe(self):
        bed = make_testbed(seed=49)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        assert plane.drain_async("n1") is False
        assert plane.drain_async("n2") is False

    def test_join_async_starts_admission(self):
        bed = make_testbed(seed=50)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 3)
        plane = make_plane(bed, app_factory=CounterApp)
        assert plane.join_async("n3") is True
        assert plane.join_async("n3") is False  # already admitted
        bed.run(1.0)
        joiner = bed.replicas("svc")["n3"]
        assert joiner.state_transfer.ready
        assert joiner.app.count == 3


class TestRestart:
    def test_restart_preserves_state_and_readmits(self):
        bed = make_testbed(seed=51)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"],
                   time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 4)

        plane = make_plane(bed, app_factory=CounterApp)
        recovered = plane.restart_node("n2")
        assert recovered.state_transfer.ready
        assert recovered.app.count == 4
        assert plane.serving() == ["n1", "n2", "n3"]
        values = call_n(bed, client, "svc", "increment", 1)
        assert values == [5]
        assert [entry["op"] for entry in plane.log] == \
            ["drain", "join"]

    def test_status_reports_views_and_readiness(self):
        bed = make_testbed(seed=52)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        bed.start()
        plane = make_plane(bed, app_factory=CounterApp)
        status = plane.status()
        assert status["serving"] == ["n1", "n2"]
        assert all(status["ready"].values())
        assert set(status["views"]) >= {"n1", "n2"}
