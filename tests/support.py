"""Shared applications and helpers for the upper-layer test suites."""

from typing import List, Optional

from repro import Application, Testbed
from repro.sim import ClusterConfig
from repro.totem import TotemConfig


class ClockApp(Application):
    """The paper's measurement server: returns the current time.

    'The client invokes a remote method that returns the current time in
    two CORBA longs.  The server simply calls gettimeofday()' (§4.2).
    """

    def __init__(self, work_s: float = 20e-6):
        self.work_s = work_s

    def get_time(self, ctx):
        yield ctx.compute(self.work_s)
        value = yield ctx.gettimeofday()
        return value.micros

    def get_time_after(self, ctx, after_us):
        """Session-monotone read: the client echoes its last-seen value
        and the service replies strictly above it (on every replica)."""
        yield ctx.compute(self.work_s)
        value = yield ctx.gettimeofday(after_us=after_us)
        return value.micros

    def get_time_coarse(self, ctx):
        value = yield ctx.time()
        return value.micros

    def get_time_ms(self, ctx):
        value = yield ctx.ftime()
        return value.micros


class CounterApp(Application):
    """Stateful app for checkpoint / state-transfer tests."""

    def __init__(self):
        self.count = 0
        self.stamps: List[int] = []

    def increment(self, ctx, amount=1):
        yield ctx.compute(10e-6)
        self.count += amount
        return self.count

    def stamped_increment(self, ctx):
        value = yield ctx.gettimeofday()
        self.count += 1
        self.stamps.append(value.micros)
        return (self.count, value.micros)

    def read(self, ctx):
        yield ctx.compute(1e-6)
        return self.count

    def get_state(self):
        return {"count": self.count, "stamps": list(self.stamps)}

    def set_state(self, state):
        self.count = state["count"]
        self.stamps = list(state["stamps"])


def make_testbed(
    *,
    seed: int = 0,
    num_nodes: int = 4,
    epoch_spread_s: float = 10.0,
    loss_rate: float = 0.0,
    drift_ppm_max: float = 50.0,
    totem_config: Optional[TotemConfig] = None,
) -> Testbed:
    config = ClusterConfig(
        num_nodes=num_nodes,
        clock_epoch_spread_s=epoch_spread_s,
        clock_drift_ppm_max=drift_ppm_max,
        loss_rate=loss_rate,
    )
    return Testbed(seed=seed, cluster_config=config, totem_config=totem_config)


def call_n(bed: Testbed, client, group: str, method: str, n: int, *args,
           timeout: float = 2.0):
    """Run ``n`` sequential invocations; returns the list of result values."""

    def scenario():
        values = []
        for _ in range(n):
            result, _latency = yield from client.timed_call(
                group, method, *args, timeout=timeout
            )
            assert result.ok, result.error
            values.append(result.value)
        return values

    return bed.run_process(scenario())
