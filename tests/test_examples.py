"""Every example script must run green and print its headline claims.

Examples are documentation; these tests keep them from rotting.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "replicas agree: True" in out
        assert "group clock monotone: True" in out
        assert "replica consistency is lost" in out

    def test_failover_demo(self):
        out = run_example("failover_demo.py")
        assert ("CLOCK ROLLED BACK" in out) or ("FAST-FORWARDED" in out)
        assert "clock stayed monotone and tracked real time." in out

    def test_recovery_demo(self):
        out = run_example("recovery_demo.py")
        assert "identical: True" in out
        assert "offset adoptions from CCS messages" in out

    def test_transaction_ids(self):
        out = run_example("transaction_ids.py")
        assert "all replicas hold identical transaction tables: True" in out
        assert "replicas consistent: False" in out

    def test_drift_compensation_demo(self):
        out = run_example("drift_compensation_demo.py")
        assert "no compensation" in out
        assert "mean-delay compensation" in out
        assert "reference steering" in out

    def test_session_timeouts(self):
        out = run_example("session_timeouts.py")
        assert "correct in 4/4 runs" in out  # the CTS block
        assert "WRONG" in out                # the baseline misbehaves

    def test_totem_bus_demo(self):
        out = run_example("totem_bus_demo.py")
        assert "all nodes identical: True" in out
        assert "same order: True" in out
        assert "delivered at n3: True" in out
