"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flux-capacitor"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.rounds == 500
        assert args.seed == 0


class TestCommands:
    def test_ccs_command(self, capsys):
        assert main(["ccs", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "TAB-CCS" in out
        assert "rounds=" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "with CTS" in out
        assert "overhead" in out

    def test_fig6_command(self, capsys):
        assert main(["fig6", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "synchronizer totals" in out
        assert "drift" in out

    def test_recovery_command(self, capsys):
        assert main(["recovery"]) == 0
        out = capsys.readouterr().out
        assert "monotone across join:   True" in out

    def test_failover_command(self, capsys):
        assert main(["failover", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "primary-backup" in out
        assert "cts" in out

    def test_drift_command(self, capsys):
        assert main(["drift", "--rounds", "120"]) == 0
        out = capsys.readouterr().out
        assert "mean-delay" in out
        assert "reference steering" in out

    def test_partition_command(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "suspended: True" in out
        assert "clock monotone through the cycle: True" in out

    def test_scale_command(self, capsys):
        assert main(["scale"]) == 0
        out = capsys.readouterr().out
        assert "EXT-SCALE" in out
        assert "p50 latency" in out
