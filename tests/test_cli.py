"""Tests for the experiment CLI."""

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.obs import export


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flux-capacitor"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.rounds == 500
        assert args.seed == 0
        assert args.metrics is None
        assert args.trace is False

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["ccs", "--metrics", "out.jsonl", "--trace"])
        assert args.metrics == "out.jsonl"
        assert args.trace is True


class TestCommands:
    def test_ccs_command(self, capsys):
        assert main(["ccs", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "TAB-CCS" in out
        assert "rounds=" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "with CTS" in out
        assert "overhead" in out

    def test_fig6_command(self, capsys):
        assert main(["fig6", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "synchronizer totals" in out
        assert "drift" in out

    def test_recovery_command(self, capsys):
        assert main(["recovery"]) == 0
        out = capsys.readouterr().out
        assert "monotone across join:   True" in out

    def test_failover_command(self, capsys):
        assert main(["failover", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "primary-backup" in out
        assert "cts" in out

    def test_drift_command(self, capsys):
        assert main(["drift", "--rounds", "120"]) == 0
        out = capsys.readouterr().out
        assert "mean-delay" in out
        assert "reference steering" in out

    def test_partition_command(self, capsys):
        assert main(["partition"]) == 0
        out = capsys.readouterr().out
        assert "suspended: True" in out
        assert "clock monotone through the cycle: True" in out

    def test_scale_command(self, capsys):
        assert main(["scale"]) == 0
        out = capsys.readouterr().out
        assert "EXT-SCALE" in out
        assert "p50 latency" in out


class TestObservability:
    def test_metrics_command_cross_check_passes(self, capsys):
        assert main(["metrics", "--rounds", "60"]) == 0
        out = capsys.readouterr().out
        assert "OBS-SMOKE" in out
        assert "MISMATCH" not in out
        assert "round spans:" in out

    def test_metrics_flag_writes_jsonl_and_prometheus(self, tmp_path, capsys):
        target = tmp_path / "ccs.jsonl"
        assert main(["ccs", "--rounds", "40",
                     "--metrics", str(target)]) == 0
        captured = capsys.readouterr()
        assert target.exists()
        prom = tmp_path / "ccs.prom"
        assert prom.exists()
        assert str(target) in captured.err

        records = export.read_jsonl(target)
        kinds = {record["record"] for record in records}
        assert kinds == {"metric", "trace", "span"}
        metric_names = {r["name"] for r in records
                        if r["record"] == "metric"}
        assert "ccs_sent_total" in metric_names
        assert "totem_tokens_forwarded_total" in metric_names
        spans = [r for r in records if r["record"] == "span"]
        assert spans and all(s["latency_us"] is not None for s in spans)

        text = prom.read_text()
        assert "# TYPE ccs_sent_total counter" in text
        assert 'cts_round_latency_us_bucket{le="+Inf"' in text
        # The registry is switched back off after the export.
        assert not obs.REGISTRY.enabled

    def test_metrics_flag_fails_fast_on_bad_path(self, capsys):
        # An unusable export path must be rejected BEFORE the experiment
        # runs, not crash after wasting the whole run.
        with pytest.raises(SystemExit):
            main(["ccs", "--metrics", ""])
        assert "--metrics" in capsys.readouterr().err

    def test_trace_flag_streams_to_stderr(self, capsys):
        assert main(["recovery", "--trace"]) == 0
        captured = capsys.readouterr()
        assert "membership.install" in captured.err
        assert "membership.install" not in captured.out

    def test_disabled_by_default_records_nothing(self, capsys):
        obs.REGISTRY.reset()  # clear residue from earlier enabled runs
        main(["ccs", "--rounds", "30"])
        capsys.readouterr()
        counter = obs.REGISTRY.get("ccs_rounds_total")
        assert counter is not None
        assert counter.total() == 0


class TestTraceCommand:
    def write_shards(self, directory):
        import json

        from repro.obs.crossnode import shard_path
        from tests.obs.test_crossnode import synthetic_op

        records = synthetic_op("feed00feed00feed")
        by_node = {}
        for record in records:
            by_node.setdefault(record["node"], []).append(record)
        for node, recs in by_node.items():
            shard_path(directory, node).write_text(
                "".join(json.dumps(r) + "\n" for r in recs))

    def test_renders_assembled_timelines(self, tmp_path, capsys):
        self.write_shards(tmp_path)
        assert main(["trace", "--shards", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "feed00feed00feed" in captured.out
        assert "client.send@c0" in captured.out
        assert "reply.recv@c0" in captured.out

    def test_jsonl_mode_and_trace_id_filter(self, tmp_path, capsys):
        self.write_shards(tmp_path)
        assert main(["trace", "--shards", str(tmp_path),
                     "--trace-id", "feed00feed00feed", "--jsonl"]) == 0
        import json

        (line,) = capsys.readouterr().out.splitlines()
        timeline = json.loads(line)
        assert timeline["trace_id"] == "feed00feed00feed"
        assert timeline["complete"] is True

    def test_unknown_trace_id_fails(self, tmp_path, capsys):
        self.write_shards(tmp_path)
        assert main(["trace", "--shards", str(tmp_path),
                     "--trace-id", "dead"]) == 1
        capsys.readouterr()

    def test_missing_shard_dir_fails(self, tmp_path, capsys):
        assert main(["trace", "--shards", str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_empty_shard_dir_fails(self, tmp_path, capsys):
        assert main(["trace", "--shards", str(tmp_path)]) == 1
        capsys.readouterr()
