"""Tests for the flight recorder and its oracle integration."""

import json

from repro import trace
from repro.chaos.oracle import InvariantOracle
from repro.obs.flight import FlightRecorder


class TestRings:
    def test_event_ring_evicts_oldest(self):
        tracer = trace.Tracer()
        recorder = FlightRecorder(events_capacity=4).start(tracer)
        try:
            for i in range(10):
                tracer.emit("round.start", node="n0", round=i)
        finally:
            recorder.stop()
        events = recorder.snapshot()["events"]
        assert len(events) == 4
        assert [e["round"] for e in events] == [6, 7, 8, 9]
        assert all("wall" in e for e in events)

    def test_frame_ring_evicts_oldest(self):
        recorder = FlightRecorder(frames_capacity=3).start(trace.Tracer())
        recorder.stop()  # frames are gated on enabled, not the sink
        recorder.enabled = True
        for i in range(5):
            recorder.record_frame("n0", "tx", ("127.0.0.1", 9000 + i),
                                  "Envelope", 64, trace_id=f"t{i}")
        frames = recorder.snapshot()["frames"]
        assert len(frames) == 3
        assert [f["trace"] for f in frames] == ["t2", "t3", "t4"]
        assert frames[0]["peer"] == "('127.0.0.1', 9002)"

    def test_disabled_recorder_drops_frames(self):
        recorder = FlightRecorder()
        recorder.record_frame("n0", "rx", "peer", "Envelope", 64)
        assert recorder.snapshot()["frames"] == []

    def test_stop_unsubscribes_and_reset_clears(self):
        tracer = trace.Tracer()
        recorder = FlightRecorder().start(tracer)
        tracer.emit("round.start", node="n0")
        recorder.stop()
        assert not tracer.enabled
        tracer.emit("round.start", node="n0")
        assert len(recorder.snapshot()["events"]) == 1
        recorder.reset()
        assert recorder.snapshot()["events"] == []
        assert recorder.dumps == []


class TestDump:
    def test_artifact_shape(self, tmp_path):
        tracer = trace.Tracer()
        recorder = FlightRecorder().start(tracer)
        tracer.emit("op.send", node="c0", trace="aa00", t=1.0)
        recorder.record_frame("c0", "tx", ("127.0.0.1", 9000),
                              "Envelope", 80, trace_id="aa00")
        recorder.stop()
        path = tmp_path / "sub" / "flight.json"  # parent is created
        written = recorder.dump(path, reason="unit-test",
                                context={"check": "none"})
        assert written == str(path)
        assert recorder.dumps == [str(path)]
        artifact = json.loads(path.read_text())
        assert artifact["artifact"] == "flight-recorder"
        assert artifact["reason"] == "unit-test"
        assert artifact["context"] == {"check": "none"}
        assert artifact["events"][0]["trace"] == "aa00"
        assert artifact["frames"][0]["size"] == 80


class TestOracleIntegration:
    def force_monotonicity_violation(self, oracle):
        oracle.observe_reply("c0", 1_000, wall_s=0.0, trace_id="aaaa")
        oracle.observe_reply("c0", 2_000, wall_s=0.001, trace_id="bbbb")
        oracle.observe_reply("c0", 1_500, wall_s=0.002, trace_id="cccc")

    def test_violation_carries_trace_ids_and_dump_path(self, tmp_path):
        recorder = FlightRecorder().start(trace.Tracer())
        oracle = InvariantOracle(flight_recorder=recorder,
                                 dump_dir=str(tmp_path))
        self.force_monotonicity_violation(oracle)
        recorder.stop()
        assert not oracle.ok
        violation = oracle.violations[0]
        assert violation.check == "monotonicity"
        assert violation.trace_ids == ["aaaa", "bbbb", "cccc"]
        assert violation.flight_dump is not None
        artifact = json.loads(open(violation.flight_dump).read())
        assert artifact["reason"] == "oracle-violation:monotonicity"
        assert artifact["context"]["trace_ids"] == violation.trace_ids
        as_dict = violation.as_dict()
        assert as_dict["trace_ids"] == violation.trace_ids
        assert as_dict["flight_dump"] == violation.flight_dump

    def test_violation_without_recorder_still_carries_traces(self):
        oracle = InvariantOracle()
        self.force_monotonicity_violation(oracle)
        violation = oracle.violations[0]
        assert violation.trace_ids == ["aaaa", "bbbb", "cccc"]
        assert violation.flight_dump is None

    def test_dump_failure_does_not_mask_the_violation(self, tmp_path):
        class ExplodingRecorder(FlightRecorder):
            def dump(self, *args, **kwargs):
                raise OSError("disk full")

        oracle = InvariantOracle(flight_recorder=ExplodingRecorder(),
                                 dump_dir=str(tmp_path))
        self.force_monotonicity_violation(oracle)
        assert not oracle.ok
        assert oracle.violations[0].flight_dump is None
