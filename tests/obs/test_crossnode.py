"""Tests for the trace shard writer and the cross-node span assembler."""

import json
import threading

from repro import trace
from repro.obs.crossnode import (
    CrossNodeSpanAssembler,
    Hop,
    OpTimeline,
    TraceShardWriter,
    assemble_timelines,
    load_shards,
    shard_path,
)


def synthetic_op(trace_id="aa00aa00aa00aa00", *, with_trace_on_execute=False,
                 client="c0", nodes=("n0", "n1"), seq=7, req=12):
    """Records for one complete operation, as the live stack emits them:
    the client sends, one gateway injects, every replica executes (trace
    lost across the Totem hop unless the baggage carried it), the time
    service serves after a CCS round, the gateway forwards replies."""
    op_group, conn = "grp.c0", 3
    records = [
        {"record": "trace", "kind": "op.send", "node": client,
         "trace": trace_id, "op_group": op_group, "conn": conn, "seq": seq,
         "method": "gettimeofday", "t": 1.0},
        {"record": "trace", "kind": "op.gateway", "node": "n0",
         "trace": trace_id, "op_group": op_group, "conn": conn, "seq": seq,
         "dedup": False, "t": 0.1},
    ]
    for i, node in enumerate(nodes):
        records.append(
            {"record": "trace", "kind": "op.execute", "node": node,
             "trace": trace_id if with_trace_on_execute else None,
             "op_group": op_group, "conn": conn, "seq": seq,
             "req": req, "method": "gettimeofday", "t": 0.2 + i})
        records.append(
            {"record": "trace", "kind": "round.won", "node": node,
             "thread": "t0", "round": 5, "winner": "n1",
             "group_us": 1000, "t": 0.25 + i})
        records.append(
            {"record": "trace", "kind": "op.served", "node": node,
             "thread": "t0", "req": req, "op_seq": 0, "round": 5,
             "fast": False, "group_us": 1000, "t": 0.3 + i})
    records.append(
        {"record": "trace", "kind": "op.reply", "node": "n0",
         "trace": trace_id, "conn": conn, "seq": seq,
         "replica": "n1", "t": 0.4})
    records.append(
        {"record": "trace", "kind": "op.reply_recv", "node": client,
         "trace": trace_id, "conn": conn, "seq": seq,
         "replies": 2, "t": 2.0})
    return records


class TestShardWriter:
    def test_events_land_in_per_node_shards(self, tmp_path):
        tracer = trace.Tracer()
        with TraceShardWriter(tmp_path, tracer=tracer) as writer:
            tracer.emit("op.send", node="c0", trace="ff00", t=1.0)
            tracer.emit("op.gateway", node="n0", trace="ff00", t=1.1)
            tracer.emit("op.gateway", node="n0", trace="ff01", t=1.2)
            assert writer.events_written == 3
            assert writer.shards() == [shard_path(tmp_path, "c0"),
                                       shard_path(tmp_path, "n0")]
        n0 = shard_path(tmp_path, "n0").read_text().splitlines()
        assert len(n0) == 2
        first = json.loads(n0[0])
        assert first["record"] == "trace"
        assert first["kind"] == "op.gateway"
        assert first["trace"] == "ff00"

    def test_close_unsubscribes(self, tmp_path):
        tracer = trace.Tracer()
        writer = TraceShardWriter(tmp_path, tracer=tracer)
        writer.close()
        assert not tracer.enabled
        tracer.emit("op.send", node="c0")  # no sink: must not raise
        assert writer.events_written == 0

    def test_concurrent_emits_from_many_threads(self, tmp_path):
        tracer = trace.Tracer()
        with TraceShardWriter(tmp_path, tracer=tracer) as writer:
            def worker(node):
                for i in range(50):
                    tracer.emit("op.send", node=node, seq=i)
            threads = [threading.Thread(target=worker, args=(f"n{j}",))
                       for j in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert writer.events_written == 200
        records = load_shards(tmp_path)
        assert len(records) == 200

    def test_weird_node_names_become_safe_filenames(self, tmp_path):
        path = shard_path(tmp_path, "no/des:*?")
        assert path.parent == tmp_path
        assert "/" not in path.name[len("trace-"):]
        assert path.name.startswith("trace-no_des")


class TestLoadShards:
    def test_skips_garbage_lines(self, tmp_path):
        shard = shard_path(tmp_path, "n0")
        shard.write_text(
            json.dumps({"record": "trace", "kind": "op.send"}) + "\n"
            + '{"record": "trace", "kind": "op.ga'  # truncated mid-line
            + "\n"
            + json.dumps({"record": "metric", "name": "x"}) + "\n"
            + json.dumps({"record": "trace", "kind": "op.reply"}) + "\n")
        records = load_shards(tmp_path)
        assert [r["kind"] for r in records] == ["op.send", "op.reply"]

    def test_ignores_non_shard_files(self, tmp_path):
        (tmp_path / "verdict.json").write_text("{}")
        (tmp_path / "notes.jsonl").write_text(
            json.dumps({"record": "trace", "kind": "op.send"}) + "\n")
        assert load_shards(tmp_path) == []


class TestAssembler:
    def assemble(self, records):
        assembler = CrossNodeSpanAssembler()
        assembler.add_events(records)
        return assembler.assemble()

    def test_complete_timeline_from_traced_hops(self):
        timelines = self.assemble(synthetic_op())
        assert len(timelines) == 1
        tl = timelines[0]
        assert tl.trace_id == "aa00aa00aa00aa00"
        assert tl.client == "c0"
        assert tl.method == "gettimeofday"
        assert tl.op == ("grp.c0", 3, 7)
        assert tl.complete

    def test_untraced_executions_join_by_op_identity(self):
        # The Totem hop strips the frame; op.execute events carry no
        # trace id but the same (op_group, conn, seq) identity.
        timelines = self.assemble(synthetic_op(with_trace_on_execute=False))
        tl = timelines[0]
        executes = [h for h in tl.hops if h.stage == "execute"]
        assert [h.node for h in executes] == ["n0", "n1"]

    def test_serves_and_rounds_join_by_request_index(self):
        tl = self.assemble(synthetic_op())[0]
        serves = [h for h in tl.hops if h.stage == "served"]
        assert [h.node for h in serves] == ["n0", "n1"]
        assert all(h.detail["group_us"] == 1000 for h in serves)
        rounds = [h for h in tl.hops if h.stage == "round.won"]
        assert [h.detail["winner"] for h in rounds] == ["n1", "n1"]

    def test_hops_are_causally_ordered(self):
        records = synthetic_op()
        records.reverse()  # arrival order must not matter
        tl = self.assemble(records)[0]
        stages = tl.stages()
        assert stages[0] == "client.send"
        assert stages[-1] == "reply.recv"
        assert stages.index("gateway.inject") < stages.index("execute")
        assert stages.index("execute") < stages.index("served")

    def test_incomplete_without_a_reply(self):
        records = [r for r in synthetic_op()
                   if r["kind"] != "op.reply_recv"]
        tl = self.assemble(records)[0]
        assert not tl.complete
        assert "reply.recv" not in tl.stages()

    def test_orphan_serves_without_execute_are_dropped(self):
        records = [r for r in synthetic_op()
                   if r["kind"] not in ("op.execute",)]
        tl = self.assemble(records)[0]
        assert "served" not in tl.stages()
        assert not tl.complete

    def test_two_operations_stay_separate(self):
        records = (synthetic_op("aaaa", seq=1, req=10)
                   + synthetic_op("bbbb", seq=2, req=11))
        timelines = self.assemble(records)
        assert [t.trace_id for t in timelines] == ["aaaa", "bbbb"]
        assert all(t.complete for t in timelines)

    def test_to_dict_is_json_able(self):
        tl = self.assemble(synthetic_op())[0]
        data = json.loads(json.dumps(tl.to_dict()))
        assert data["complete"] is True
        assert data["nodes"][0] == "c0"
        assert {h["stage"] for h in data["hops"]} >= {
            "client.send", "gateway.inject", "execute", "round.won",
            "served", "reply.forward", "reply.recv"}


class TestAssembleTimelines:
    def test_round_trip_through_shard_files(self, tmp_path):
        tracer = trace.Tracer()
        with TraceShardWriter(tmp_path, tracer=tracer):
            for r in synthetic_op():
                fields = {k: v for k, v in r.items()
                          if k not in ("record", "kind", "node")}
                tracer.emit(r["kind"], node=r["node"], **fields)
        timelines = assemble_timelines(tmp_path)
        assert len(timelines) == 1
        assert timelines[0].complete


class TestOpTimeline:
    def test_complete_requires_every_acceptance_stage(self):
        tl = OpTimeline("x", hops=[Hop("client.send", "c0"),
                                   Hop("gateway.inject", "n0"),
                                   Hop("served", "n0"),
                                   Hop("round.won", "n0")])
        assert not tl.complete
        tl.hops.append(Hop("reply.recv", "c0"))
        assert tl.complete

    def test_unknown_stages_sort_last(self):
        tl = OpTimeline("x", hops=[Hop("mystery", "n0"),
                                   Hop("client.send", "c0")])
        tl.sort()
        assert tl.stages() == ["client.send", "mystery"]
