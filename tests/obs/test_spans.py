"""Tests for round-span assembly from the trace stream."""

from repro import trace
from repro.obs import RoundSpan, RoundSpanTracker

from support import ClockApp, call_n, make_testbed  # noqa: E402


def emit_round(tracer, node, thread, round_number, *, winner="n2",
               start_t=1.0, complete_t=1.001):
    tracer.emit("round.start", node, thread=thread, round=round_number,
                proposal_us=100, call="gettimeofday", buffered=False,
                t=start_t)
    tracer.emit("round.sent", node, thread=thread, round=round_number)
    tracer.emit("round.won", node, thread=thread, round=round_number,
                winner=winner, group_us=150)
    tracer.emit("round.complete", node, thread=thread, round=round_number,
                group_us=150, offset_us=50, latency_us=1000.0, t=complete_t)


class TestTrackerUnit:
    def test_assembles_one_span_per_round(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        with tracker:
            emit_round(tracer, "n1", "t0", 1)
            emit_round(tracer, "n1", "t0", 2, start_t=2.0, complete_t=2.002)
        spans = tracker.completed()
        assert [s.round_number for s in spans] == [1, 2]
        span = spans[0]
        assert span.node == "n1"
        assert span.sent and not span.suppressed and not span.from_buffer
        assert span.winner == "n2"
        assert not span.won_locally
        assert span.proposal_us == 100
        assert span.group_us == 150
        assert span.offset_us == 50
        assert span.latency_us == (1.001 - 1.0) * 1e6
        assert span.complete
        assert tracker.open_spans() == []

    def test_out_of_order_won_before_start(self):
        """The winner is often ordered before the local round starts
        (input-buffer short-circuit); the span must still assemble."""
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        with tracker:
            tracer.emit("round.won", "n3", thread="t0", round=1,
                        winner="n2", group_us=99)
            tracer.emit("round.start", "n3", thread="t0", round=1,
                        proposal_us=90, call="gettimeofday", buffered=True,
                        t=5.0)
            tracer.emit("round.complete", "n3", thread="t0", round=1,
                        group_us=99, offset_us=9, latency_us=0.0, t=5.0)
        (span,) = tracker.completed()
        assert span.from_buffer
        assert span.winner == "n2"
        assert span.latency_us == 0.0

    def test_suppression_and_adoption_flags(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        with tracker:
            tracer.emit("round.start", "n2", thread="t0", round=4,
                        proposal_us=1, call="time", buffered=False, t=0.0)
            tracer.emit("round.suppressed", "n2", thread="t0", round=4)
            tracer.emit("round.adopted", "n2", thread="t0", round=4,
                        offset_us=-7)
        (span,) = tracker.open_spans()
        assert span.suppressed
        assert span.adopted
        assert span.offset_us == -7
        assert not span.complete
        assert span.latency_us is None

    def test_ignores_unrelated_and_incomplete_events(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        with tracker:
            tracer.emit("membership.gather", "n1", reason="boot")
            tracer.emit("round.start", "n1")  # no thread/round: dropped
        assert tracker.all_spans() == []

    def test_detach_stops_assembly(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        tracker.attach()
        tracker.detach()
        emit_round(tracer, "n1", "t0", 1)
        assert tracker.completed() == []

    def test_keep_events_retains_constituents(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(keep_events=True, tracer=tracer)
        with tracker:
            emit_round(tracer, "n1", "t0", 1)
        (span,) = tracker.completed()
        assert [e.kind for e in span.events] == [
            "round.start", "round.sent", "round.won", "round.complete"]

    def test_winner_counts_and_latencies(self):
        tracer = trace.Tracer()
        tracker = RoundSpanTracker(tracer=tracer)
        with tracker:
            emit_round(tracer, "n1", "t0", 1, winner="n2")
            emit_round(tracer, "n1", "t0", 2, winner="n2")
            emit_round(tracer, "n1", "t0", 3, winner="n1")
        assert tracker.winner_counts() == {"n2": 2, "n1": 1}
        assert len(tracker.latencies_us()) == 3

    def test_to_dict_is_json_friendly(self):
        span = RoundSpan("n1", "t0", 7, started_at=1.0, completed_at=1.5,
                         winner="n1")
        data = span.to_dict()
        assert data["round"] == 7
        assert data["won_locally"] is True
        assert data["latency_us"] == 0.5e6


class TestTrackerIntegration:
    def test_spans_from_a_real_run(self):
        bed = make_testbed(seed=190)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        with RoundSpanTracker() as tracker:
            call_n(bed, client, "svc", "get_time", 5)
            bed.run(0.05)
        spans = tracker.completed()
        # Every replica completes every application round.
        assert len(spans) >= 15
        assert all(s.latency_us is not None and s.latency_us >= 0
                   for s in spans)
        # Exactly one synchronizer per round; every span knows its winner.
        assert all(s.winner for s in spans)
        winners = tracker.winner_counts()
        assert sum(winners.values()) == len(spans)
        # Synchronizers are group members, and one of them won rounds.
        assert set(winners) <= {"n1", "n2", "n3"}
        # A winning replica's span records a send; a buffered round not.
        for span in spans:
            if span.from_buffer:
                assert not span.sent
