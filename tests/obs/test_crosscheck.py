"""Cross-checks: registry-derived protocol counts must equal the
wire-level statistics the benchmark harness reports.

This is the acceptance gate for the telemetry subsystem — the metrics
must *agree with* the numbers the evaluation tables are built from, not
merely resemble them.
"""

import pytest

from repro import obs
from repro.workloads import run_latency_workload

from support import ClockApp, call_n, make_testbed  # noqa: E402


@pytest.fixture
def ccs_run():
    """One CCS workload recorded by the registry and the span tracker."""
    tracker = obs.RoundSpanTracker()
    with obs.REGISTRY.session(), tracker:
        run = run_latency_workload(time_source="cts", invocations=80, seed=11)
    return run, tracker


class TestCcsCountsMatchHarness:
    def test_transmitted_equals_sent_minus_suppressed(self, ccs_run):
        run, _ = ccs_run
        sent = obs.REGISTRY.get("ccs_sent_total")
        suppressed = obs.REGISTRY.get("ccs_suppressed_total")
        derived = {
            node: sent.value(node=node) - suppressed.value(node=node)
            for node in run.ccs_transmitted
        }
        assert derived == {node: float(count)
                           for node, count in run.ccs_transmitted.items()}

    def test_total_transmitted_equals_rounds(self, ccs_run):
        run, _ = ccs_run
        sent = obs.REGISTRY.get("ccs_sent_total")
        suppressed = obs.REGISTRY.get("ccs_suppressed_total")
        assert sent.total() - suppressed.total() == run.rounds

    def test_round_latency_histogram_populated(self, ccs_run):
        run, _ = ccs_run
        histogram = obs.REGISTRY.get("cts_round_latency_us")
        # Each of the three replicas completes (at least) one round per
        # application invocation; recovery rounds add a few more, but a
        # late joiner may miss the earliest ones.
        assert histogram.total_count() >= 3 * run.invocations
        for node in run.ccs_transmitted:
            snapshot = histogram.snapshot(node=node)
            assert snapshot.count >= run.invocations
            assert snapshot.sum >= 0.0

    def test_spans_agree_with_round_counters(self, ccs_run):
        _, tracker = ccs_run
        rounds = obs.REGISTRY.get("ccs_rounds_total")
        spans = tracker.completed()
        # One completed span per completed round per replica.
        assert len(spans) == int(rounds.total())
        sent_spans = sum(1 for s in spans if s.sent and not s.suppressed)
        sent = obs.REGISTRY.get("ccs_sent_total")
        suppressed = obs.REGISTRY.get("ccs_suppressed_total")
        assert sent_spans == int(sent.total() - suppressed.total())

    def test_winner_counts_sum_to_rounds(self, ccs_run):
        run, tracker = ccs_run
        winners = tracker.winner_counts()
        # Every completed span names its synchronizer.
        assert sum(winners.values()) == len(tracker.completed())
        # Only replicas that transmitted a CCS message can have won rounds.
        for node, count in winners.items():
            if count:
                assert run.ccs_transmitted.get(node, 0) > 0 or count == 0


class TestInterfaceCountersMatchNetwork:
    def test_frames_sent_matches_interface_stats(self):
        bed = make_testbed(seed=21)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        with obs.REGISTRY.session():
            bed.start()
            call_n(bed, client, "svc", "get_time", 5)
        frames = obs.REGISTRY.get("net_frames_sent_total")
        bytes_sent = obs.REGISTRY.get("net_bytes_sent_total")
        for node_id, node in bed.cluster.nodes.items():
            assert frames.value(node=node_id) == node.iface.frames_sent
            assert bytes_sent.value(node=node_id) == node.iface.bytes_sent


class TestDisabledOverhead:
    def test_disabled_run_identical_to_baseline(self):
        """With the registry off the instrumented stack must behave
        byte-for-byte like the uninstrumented one (same RNG draws, same
        latencies) — the hooks must be pure observers."""
        obs.REGISTRY.reset()
        baseline = run_latency_workload(time_source="cts", invocations=40,
                                        seed=5)
        assert obs.REGISTRY.get("ccs_rounds_total").total() == 0
        with obs.REGISTRY.session():
            recorded = run_latency_workload(time_source="cts", invocations=40,
                                            seed=5)
        assert recorded.latencies_us == baseline.latencies_us
        assert recorded.ccs_transmitted == baseline.ccs_transmitted
