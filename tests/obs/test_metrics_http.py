"""Tests for the asyncio metrics HTTP endpoint."""

import asyncio
import json

from repro.obs import MetricsHttpServer
from repro.obs.metrics import MetricsRegistry


def sample_registry():
    registry = MetricsRegistry()
    registry.enable(clock=lambda: 2.0)
    registry.counter("requests_total", help="requests").inc(5, node="n0")
    registry.gauge("offset_us", help="offset").set(-3.5, node='n"1\n')
    registry.disable()
    return registry


async def http_request(port, request_bytes):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request_bytes)
    await writer.drain()
    response = await reader.read()
    writer.close()
    return response.decode("utf-8")


def serve_and_fetch(path_or_request, *, registry=None):
    """Boot the server on an ephemeral port, issue one request, stop."""
    if isinstance(path_or_request, str):
        request = (f"GET {path_or_request} HTTP/1.1\r\n"
                   "Host: localhost\r\n\r\n").encode()
    else:
        request = path_or_request

    async def scenario():
        server = MetricsHttpServer(
            port=0, registry=registry or sample_registry())
        await server.start()
        try:
            assert server.bound_port
            response = await http_request(server.bound_port, request)
        finally:
            await server.stop()
        return server, response

    return asyncio.run(scenario())


def split_response(response):
    head, _, body = response.partition("\r\n\r\n")
    status = head.splitlines()[0]
    headers = {line.split(":", 1)[0].lower(): line.split(":", 1)[1].strip()
               for line in head.splitlines()[1:]}
    return status, headers, body


class TestRoutes:
    def test_metrics_is_prometheus_text(self):
        server, response = serve_and_fetch("/metrics")
        status, headers, body = split_response(response)
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8")
        assert int(headers["content-length"]) == len(body.encode())
        assert "# TYPE requests_total counter" in body
        assert 'requests_total{node="n0"} 5' in body
        assert server.requests_served == 1

    def test_metrics_json_parses(self):
        _, response = serve_and_fetch("/metrics.json")
        status, headers, body = split_response(response)
        assert status == "HTTP/1.1 200 OK"
        assert headers["content-type"] == "application/json"
        samples = json.loads(body)
        by_name = {s["name"]: s for s in samples}
        assert by_name["requests_total"]["value"] == 5.0
        assert by_name["offset_us"]["value"] == -3.5

    def test_healthz(self):
        _, response = serve_and_fetch("/healthz")
        status, _, body = split_response(response)
        assert status == "HTTP/1.1 200 OK"
        assert body == "ok\n"

    def test_query_strings_are_ignored(self):
        _, response = serve_and_fetch("/healthz?verbose=1")
        status, _, _ = split_response(response)
        assert status == "HTTP/1.1 200 OK"

    def test_unknown_path_is_404(self):
        _, response = serve_and_fetch("/nope")
        status, _, body = split_response(response)
        assert status == "HTTP/1.1 404 Not Found"
        assert body == "not found\n"

    def test_post_is_405(self):
        _, response = serve_and_fetch(
            b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        status, _, _ = split_response(response)
        assert status == "HTTP/1.1 405 Method Not Allowed"


class TestLifecycle:
    def test_bound_port_none_before_start_and_after_stop(self):
        async def scenario():
            server = MetricsHttpServer(port=0, registry=sample_registry())
            assert server.bound_port is None
            await server.start()
            port = server.bound_port
            assert port
            await server.stop()
            assert server.bound_port is None
            return port

        asyncio.run(scenario())

    def test_sequential_requests_on_one_server(self):
        async def scenario():
            server = MetricsHttpServer(port=0, registry=sample_registry())
            await server.start()
            try:
                for _ in range(3):
                    response = await http_request(
                        server.bound_port,
                        b"GET /healthz HTTP/1.1\r\n\r\n")
                    assert "200 OK" in response
            finally:
                await server.stop()
            assert server.requests_served == 3

        asyncio.run(scenario())
