"""Tests for the JSONL, Prometheus and summary-table exporters."""

import io

import pytest

from repro import trace
from repro.obs import MetricsRegistry, RoundSpan, export


def populated_registry():
    registry = MetricsRegistry()
    registry.enable(clock=lambda: 1.5)
    registry.counter("requests_total", help="requests served").inc(3, node="n1")
    registry.gauge("offset_us", help="clock offset").set(-42.5, node="n2")
    hist = registry.histogram("latency_us", help="latency", buckets=(10, 100))
    hist.observe(5, node="n1")
    hist.observe(50, node="n1")
    hist.observe(500, node="n1")
    registry.disable()
    return registry


class TestJsonl:
    def test_round_trip_through_a_file(self, tmp_path):
        registry = populated_registry()
        target = tmp_path / "dump.jsonl"
        written = export.write_jsonl(registry, target)
        records = export.read_jsonl(target)
        assert written == len(records) == 3
        by_name = {record["name"]: record for record in records}
        assert by_name["requests_total"]["value"] == 3.0
        assert by_name["requests_total"]["labels"] == {"node": "n1"}
        assert by_name["requests_total"]["t"] == 1.5
        assert by_name["offset_us"]["value"] == -42.5
        hist = by_name["latency_us"]
        assert hist["count"] == 3
        assert hist["sum"] == 555.0
        assert hist["buckets"] == [[10.0, 1], [100.0, 2], [float("inf"), 3]]

    def test_accepts_file_like_target(self):
        registry = populated_registry()
        buffer = io.StringIO()
        export.write_jsonl(registry, buffer)
        buffer.seek(0)
        assert len(export.read_jsonl(buffer)) == 3

    def test_garbage_lines_are_skipped_by_default(self, tmp_path):
        target = tmp_path / "dump.jsonl"
        target.write_text(
            '{"record": "metric", "name": "a", "value": 1}\n'
            "\n"
            '{"record": "metric", "name": "b", "va\n'  # truncated mid-line
            "not json at all\n"
            '{"record": "metric", "name": "c", "value": 3}\n')
        records = export.read_jsonl(target)
        assert [r["name"] for r in records] == ["a", "c"]

    def test_strict_mode_raises_on_the_first_bad_line(self, tmp_path):
        import json

        target = tmp_path / "dump.jsonl"
        target.write_text(
            '{"record": "metric", "name": "a", "value": 1}\n'
            "garbage\n")
        with pytest.raises(json.JSONDecodeError):
            export.read_jsonl(target, strict=True)

    def test_embeds_trace_events_and_spans(self, tmp_path):
        registry = populated_registry()
        events = [trace.TraceEvent("round.start", "n1",
                                   {"thread": "t0", "round": 1, "t": 0.5})]
        spans = [RoundSpan("n1", "t0", 1, started_at=0.5, completed_at=0.6)]
        target = tmp_path / "dump.jsonl"
        export.write_jsonl(registry, target, trace_events=events, spans=spans)
        records = export.read_jsonl(target)
        kinds = [record["record"] for record in records]
        assert kinds.count("metric") == 3
        assert kinds.count("trace") == 1
        assert kinds.count("span") == 1
        (span_record,) = [r for r in records if r["record"] == "span"]
        assert span_record["node"] == "n1"
        assert span_record["latency_us"] == pytest.approx(100000.0)
        (trace_record,) = [r for r in records if r["record"] == "trace"]
        assert trace_record["kind"] == "round.start"
        assert trace_record["round"] == 1


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        text = export.prometheus_text(populated_registry())
        assert "# HELP requests_total requests served\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{node="n1"} 3\n' in text
        assert "# TYPE offset_us gauge\n" in text
        assert 'offset_us{node="n2"} -42.5\n' in text

    def test_histogram_exposition(self):
        text = export.prometheus_text(populated_registry())
        assert 'latency_us_bucket{le="10",node="n1"} 1\n' in text
        assert 'latency_us_bucket{le="100",node="n1"} 2\n' in text
        assert 'latency_us_bucket{le="+Inf",node="n1"} 3\n' in text
        assert 'latency_us_sum{node="n1"} 555\n' in text
        assert 'latency_us_count{node="n1"} 3\n' in text

    def test_empty_series_emit_no_header(self):
        registry = MetricsRegistry()
        registry.counter("unused_total", help="never incremented")
        assert export.prometheus_text(registry) == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("c").inc(name='quo"te\\slash')
        text = export.prometheus_text(registry)
        assert r'c{name="quo\"te\\slash"} 1' in text

    def test_newlines_in_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("c").inc(name="line1\nline2")
        text = export.prometheus_text(registry)
        assert r'c{name="line1\nline2"} 1' in text
        # The rendered sample must stay on one physical line.
        (sample_line,) = [line for line in text.splitlines()
                          if line.startswith("c{")]
        assert sample_line == r'c{name="line1\nline2"} 1'


class TestSummaryTable:
    def test_lists_every_series(self):
        table = export.summary_table(populated_registry(), title="smoke")
        assert "smoke" in table
        assert "requests_total" in table
        assert "offset_us" in table
        assert "count=3" in table
        assert '{node="n1"}' in table

    def test_empty_registry(self):
        table = export.summary_table(MetricsRegistry(), title="empty")
        assert "no samples recorded" in table
