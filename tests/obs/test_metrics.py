"""Unit tests for the metrics registry and its instruments."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsError, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_disabled_registry_records_nothing(self, registry):
        counter = registry.counter("c")
        counter.inc(5, node="n1")
        assert counter.value(node="n1") == 0.0
        assert counter.samples() == []

    def test_inc_accumulates_per_label_set(self, registry):
        counter = registry.counter("c")
        registry.enable()
        counter.inc(node="n1")
        counter.inc(2, node="n1")
        counter.inc(7, node="n2")
        assert counter.value(node="n1") == 3.0
        assert counter.value(node="n2") == 7.0
        assert counter.value(node="n9") == 0.0
        assert counter.total() == 10.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("c")
        registry.enable()
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_samples_timestamped_with_bound_clock(self, registry):
        counter = registry.counter("c")
        registry.enable(clock=lambda: 12.5)
        counter.inc(node="n1")
        (sample,) = counter.samples()
        assert sample["t"] == 12.5
        assert sample["labels"] == {"node": "n1"}
        assert sample["value"] == 1.0


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("g")
        registry.enable()
        gauge.set(4.0, node="n1")
        gauge.add(-1.5, node="n1")
        assert gauge.value(node="n1") == 2.5

    def test_disabled_set_is_noop(self, registry):
        gauge = registry.gauge("g")
        gauge.set(4.0, node="n1")
        assert gauge.value(node="n1") == 0.0


class TestHistogram:
    def test_bucket_assignment(self, registry):
        hist = registry.histogram("h", buckets=(10, 100))
        registry.enable()
        for value in (3, 10, 50, 99, 100, 250):
            hist.observe(value)
        snap = hist.snapshot()
        # bisect_left: values equal to a bound land in that bucket.
        assert snap.bucket_counts == (2, 3, 1)
        assert snap.cumulative() == [(10, 2), (100, 5), (float("inf"), 6)]
        assert snap.count == 6
        assert snap.sum == 512
        assert snap.minimum == 3
        assert snap.maximum == 250
        assert snap.mean == pytest.approx(512 / 6)

    def test_empty_snapshot(self, registry):
        hist = registry.histogram("h", buckets=(1, 2))
        snap = hist.snapshot(node="n1")
        assert snap.count == 0
        assert snap.mean == 0.0
        assert snap.bucket_counts == (0, 0, 0)

    def test_bounds_are_sorted(self, registry):
        hist = registry.histogram("h", buckets=(100, 1, 10))
        assert hist.bounds == (1, 10, 100)

    def test_requires_buckets(self, registry):
        with pytest.raises(MetricsError):
            registry.histogram("h", buckets=())

    def test_disabled_observe_is_noop(self, registry):
        hist = registry.histogram("h", buckets=(1,))
        hist.observe(0.5)
        assert hist.total_count() == 0


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("c", help="one")
        second = registry.counter("c", help="two")
        assert first is second

    def test_type_conflict_raises(self, registry):
        registry.counter("c")
        with pytest.raises(MetricsError):
            registry.gauge("c")

    def test_get_and_metrics_listing(self, registry):
        registry.counter("b")
        registry.gauge("a")
        assert registry.get("a") is not None
        assert registry.get("missing") is None
        assert [m.name for m in registry.metrics()] == ["a", "b"]

    def test_reset_clears_series_keeps_registrations(self, registry):
        counter = registry.counter("c")
        registry.enable()
        counter.inc(node="n1")
        registry.reset()
        assert registry.get("c") is counter
        assert counter.value(node="n1") == 0.0

    def test_session_scopes_recording(self, registry):
        counter = registry.counter("c")
        counter.inc()  # before: disabled
        with registry.session():
            assert registry.enabled
            counter.inc()
        assert not registry.enabled
        counter.inc()  # after: disabled again
        # The in-session sample survives the block for reading back.
        assert counter.total() == 1.0

    def test_session_resets_previous_data(self, registry):
        counter = registry.counter("c")
        with registry.session():
            counter.inc(5)
        with registry.session():
            pass
        assert counter.total() == 0.0

    def test_clock_defaults_to_zero(self, registry):
        assert registry.now() == 0.0
        registry.set_clock(lambda: 3.25)
        assert registry.now() == 3.25

    def test_collect_flattens_all_instruments(self, registry):
        registry.enable()
        registry.counter("c").inc(node="n1")
        registry.gauge("g").set(2.0)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        names = [sample["name"] for sample in registry.collect()]
        assert names == ["c", "g", "h"]


class TestZeroCostWhenDisabled:
    """The disabled path must not allocate series or touch the clock."""

    def test_no_series_created(self, registry):
        ticks = []
        registry.set_clock(lambda: ticks.append(1) or 0.0)
        registry.counter("c").inc(node="n1")
        registry.gauge("g").set(1.0, node="n1")
        registry.histogram("h", buckets=(1,)).observe(2.0, node="n1")
        assert registry.collect() == []
        assert ticks == []  # the clock is never consulted while disabled
