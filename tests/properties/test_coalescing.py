"""Property tests for round coalescing and the drift-bounded fast path.

Random seeds, clock drift, message loss, concurrency and crash times;
the invariants checked are the ones the amortized protocol must keep
from the per-operation protocol:

* **agreement** — every operation served from a round gets the same
  group-clock value on every replica that serves it;
* **client monotonicity** — a client issuing sequential calls sees
  strictly increasing time (under the fast path this needs the session
  floor: fast values are replica-local, so the client echoes its
  last-seen value and every replica serves strictly above it);
* **replica monotonicity** — the sequence of values one replica hands
  out never decreases, fast-path reads included;
* **offset identity** — every commit records ``group == physical +
  offset`` exactly (Section 3.1's invariant);
* **bounded staleness** — a fast-path read is served at most
  ``max_staleness_us`` of local elapsed time after the last round.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RpcTimeout

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)

COALESCE_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_concurrent(
    seed,
    *,
    concurrency=5,
    calls_each=5,
    loss_rate=0.0,
    drift_ppm=50.0,
    fast_path=False,
    max_staleness_us=2_000,
    crash_at=None,
    session=False,
):
    """Drive ``concurrency`` closed-loop workers; returns the testbed
    and each worker's answered values, in call order."""
    bed = make_testbed(seed=seed, epoch_spread_s=10.0, loss_rate=loss_rate,
                       drift_ppm_max=drift_ppm)
    bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts",
               fast_path=fast_path, max_staleness_us=max_staleness_us)
    client = bed.client("n0")
    bed.start(settle=0.3)
    if crash_at is not None:
        bed.sim.schedule(crash_at, bed.crash, "n3")

    per_worker = [[] for _ in range(concurrency)]

    def worker(i):
        done = attempts = 0
        last = None
        while done < calls_each and attempts < calls_each * 6:
            attempts += 1
            try:
                if session and last is not None:
                    result = yield client.call(
                        "svc", "get_time_after", last, timeout=0.5)
                else:
                    result = yield client.call("svc", "get_time", timeout=0.5)
            except RpcTimeout:
                continue  # failover in progress; retry
            if result.ok:
                per_worker[i].append(result.value)
                last = result.value
                done += 1
        return None

    workers = [bed.sim.process(worker(i), name=f"worker-{i}")
               for i in range(concurrency)]
    bed.run(4.0)
    for proc in workers:
        assert proc.triggered, "worker deadlocked"
        if not proc.ok:
            proc._fail_silently = True
            raise proc.value
    return bed, per_worker


def check_agreement(bed, group="svc"):
    """Round-served operations got identical values on every replica."""
    maps = [replica.time_source.served_ops
            for replica in bed.replicas(group).values()]
    keys = set().union(*maps)
    assert keys, "no operations were served from rounds"
    for key in keys:
        values = {m[key] for m in maps if key in m}
        assert len(values) == 1, f"op {key} served {values}"


def check_replica_monotone(bed, group="svc"):
    for node_id, replica in bed.replicas(group).items():
        micros = [v.micros for _, _, _, v in replica.time_source.readings]
        for a, b in zip(micros, micros[1:]):
            assert b >= a, f"{node_id} stepped back: {a} -> {b}"


def check_offset_identity(bed, group="svc"):
    for replica in bed.replicas(group).values():
        history = replica.time_source.clock_state.history
        assert history
        for group_us, physical_us, offset_us in history:
            assert group_us == physical_us + offset_us


class TestCoalescingInvariants:
    @settings(**COALESCE_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        concurrency=st.integers(min_value=2, max_value=6),
        loss_rate=st.sampled_from([0.0, 0.0, 0.02, 0.05]),
        drift_ppm=st.sampled_from([0.0, 50.0, 200.0]),
        crash=st.booleans(),
        crash_at=st.floats(min_value=0.01, max_value=0.4),
    )
    def test_agreement_and_monotonicity(
        self, seed, concurrency, loss_rate, drift_ppm, crash, crash_at
    ):
        bed, per_worker = run_concurrent(
            seed,
            concurrency=concurrency,
            loss_rate=loss_rate,
            drift_ppm=drift_ppm,
            crash_at=crash_at if crash else None,
        )
        # Every worker finished all its calls (retries absorb failover).
        assert all(len(values) == 5 for values in per_worker)
        # A client's sequential calls see strictly increasing time; two
        # *different* workers may share a round (equal values) but one
        # worker's next call always lands in a later round.
        for values in per_worker:
            assert all(b > a for a, b in zip(values, values[1:]))
        check_agreement(bed)
        check_replica_monotone(bed)
        check_offset_identity(bed)

    def test_concurrency_actually_coalesces(self):
        bed, _ = run_concurrent(11, concurrency=6, calls_each=8)
        stats = [replica.time_source.stats
                 for replica in bed.replicas("svc").values()]
        assert all(s.ops_coalesced > 0 for s in stats)
        assert all(s.ops_completed > s.rounds_completed for s in stats)

    def test_prune_floor_respects_queued_requests(self):
        # Regression (found by this suite): the retention prune floor
        # used to jump past a request that was delivered but had not
        # started executing, dropping the retained round that covered
        # its read — the replica then served it a later round's value
        # while faster replicas served the retained one.
        bed, per_worker = run_concurrent(0, concurrency=3, loss_rate=0.02)
        assert all(len(values) == 5 for values in per_worker)
        check_agreement(bed)
        check_replica_monotone(bed)

    def test_slow_member_gets_messages_others_already_delivered(self):
        # Regression (found by this suite): a member that missed an
        # old-ring CCS message went unserved during Totem recovery once
        # the other members finished recovering (installing the new
        # ring wiped their retransmission buffers) and falsely
        # tombstoned a message the others had delivered — consumption
        # then crashed on the round-sequence gap.
        bed, per_worker = run_concurrent(6, concurrency=4, loss_rate=0.05,
                                         fast_path=True, crash_at=0.2)
        assert all(len(values) == 5 for values in per_worker)
        check_agreement(bed)
        check_replica_monotone(bed)


class TestFastPathInvariants:
    @settings(**COALESCE_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        max_staleness_us=st.sampled_from([500, 2_000, 8_000]),
        drift_ppm=st.sampled_from([0.0, 50.0]),
    )
    def test_staleness_bound_and_local_monotonicity(
        self, seed, max_staleness_us, drift_ppm
    ):
        bed, per_worker = run_concurrent(
            seed,
            concurrency=4,
            fast_path=True,
            max_staleness_us=max_staleness_us,
            drift_ppm=drift_ppm,
        )
        assert all(len(values) == 5 for values in per_worker)
        for replica in bed.replicas("svc").values():
            source = replica.time_source
            for _, _, elapsed_us in source.fast_served:
                assert 0 <= elapsed_us <= max_staleness_us
                assert source.drift_bound.permits(elapsed_us)
        # Fast-path values interleave with round values: one replica's
        # hand-outs must still never decrease, and operations that did
        # go through rounds still agree across replicas.
        check_replica_monotone(bed)
        check_agreement(bed)
        check_offset_identity(bed)

    def test_quiet_client_hits_the_fast_path(self):
        bed, per_worker = run_concurrent(
            7, concurrency=1, calls_each=10, fast_path=True,
            max_staleness_us=8_000,
        )
        hits = sum(replica.time_source.stats.fast_path_hits
                   for replica in bed.replicas("svc").values())
        assert hits > 0
        assert len(per_worker[0]) == 10
        check_replica_monotone(bed)

    def test_session_floor_keeps_clients_monotone(self):
        # Regression (found by this suite): fast-path values are local
        # extrapolations, so two replicas can disagree by the
        # inter-replica synchronization error (~20us observed); a client
        # whose consecutive calls were answered by different replicas
        # saw time step back.  Echoing the last-seen value as a session
        # floor restores strictly increasing reads: the floor rides the
        # totally ordered request, so every replica serves above it.
        for seed in (36, 37):
            bed, per_worker = run_concurrent(
                seed, concurrency=4, loss_rate=0.05, fast_path=True,
                session=True, crash_at=0.2 if seed == 36 else None)
            assert all(len(values) == 5 for values in per_worker)
            for values in per_worker:
                assert all(b > a for a, b in zip(values, values[1:]))
            check_agreement(bed)
            check_replica_monotone(bed)

    def test_fast_path_requires_coalescing(self):
        from repro.errors import TimeServiceError

        bed = make_testbed(seed=1)
        with pytest.raises(TimeServiceError):
            bed.deploy("svc", ClockApp, ["n1"], time_source="cts",
                       coalesce=False, fast_path=True)
