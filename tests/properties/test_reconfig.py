"""Reconfiguration property tests: randomized join/drain/crash
interleavings on a five-node simulated bed.

Each example draws an interleaving of elastic-control-plane events —
admit the spare replica, drain a serving one, crash (and optionally
recover) another — while a client keeps reading the group clock.  The
invariant oracle must report zero violations: the clock never rolls
back and replicas that answer, answer identically, no matter how the
membership churns.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.oracle import InvariantOracle
from repro.control import ControlPlane
from repro.errors import RpcTimeout
from repro.sim import FaultPlan

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)

RECONFIG_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SERVING = ["n1", "n2", "n3"]
SPARE = "n4"


def run_reconfig_interleaving(seed, plan, plane_events, calls=12):
    """Run ``calls`` reads while the plan churns the membership.

    ``plane_events`` maps event kinds to targets so the end state can be
    asserted.  Returns (plane, oracle, values).
    """
    bed = make_testbed(seed=seed, num_nodes=5, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, SERVING, style="active", time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)

    oracle = InvariantOracle()
    plane = ControlPlane(bed, group="svc", app_factory=ClockApp,
                         on_node_ready=oracle.note_recovery,
                         style="active", time_source="cts")
    def control_drain(node_id):
        oracle.note_reconfig(node_id)
        return plane.drain_async(node_id)

    def control_join(node_id):
        oracle.note_reconfig(node_id)
        return plane.join_async(node_id)

    bed.control_drain = control_drain
    bed.control_join = control_join
    oracle.attach()
    try:
        plan.arm(bed)

        def scenario():
            values = []
            attempts = 0
            while len(values) < calls and attempts < calls * 5:
                attempts += 1
                try:
                    result, latency = yield from client.timed_call(
                        "svc", "get_time", timeout=0.5)
                except RpcTimeout:
                    continue  # churn in progress; retry
                if result.ok:
                    oracle.observe_reply(
                        "c0", result.value,
                        wall_s=bed.sim.now, rtt_s=latency)
                    values.append(result.value)
            return values

        values = bed.run_process(scenario())
        # Let async drains finalize and late joins transfer state.
        bed.run(1.5)
        oracle.finish(bed, group="svc")
    finally:
        oracle.detach()
    return plane, oracle, values


class TestReconfigChaos:
    @settings(**RECONFIG_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        order=st.permutations(["join", "drain", "crash"]),
        gaps=st.tuples(*[st.floats(min_value=0.02, max_value=0.25)] * 3),
        victim=st.sampled_from(SERVING),
        crash_offset=st.integers(min_value=1, max_value=2),
    )
    def test_interleavings_keep_invariants(
            self, seed, order, gaps, victim, crash_offset):
        # The crashed node is always distinct from the drained one.
        crashed = SERVING[(SERVING.index(victim) + crash_offset) % 3]
        at = 0.05
        plan = FaultPlan()
        plane_events = {}
        for kind, gap in zip(order, gaps):
            if kind == "join":
                plan.join(SPARE, at=at)
            elif kind == "drain":
                plan.drain(victim, at=at)
            else:
                plan.crash(crashed, at=at)
            plane_events[kind] = at
            at += gap

        plane, oracle, values = run_reconfig_interleaving(
            seed, plan, plane_events)

        assert oracle.ok, [v.as_dict() for v in oracle.violations]
        assert len(values) >= 8
        assert all(b > a for a, b in zip(values, values[1:]))
        serving = plane.serving()
        assert SPARE in serving  # the join always lands
        assert victim not in serving  # the drain always retires
        assert [entry["node"] for entry in plane.log
                if entry["op"] == "drain"] == [victim]

    @settings(**RECONFIG_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        drain_at=st.floats(min_value=0.02, max_value=0.2),
        rejoin_gap=st.floats(min_value=0.1, max_value=0.4),
    )
    def test_drain_then_rejoin_same_node(self, seed, drain_at, rejoin_gap):
        """A drained replica re-admitted through state transfer must pick
        up exactly where the group is — never behind it."""
        plan = (FaultPlan()
                .drain("n2", at=drain_at)
                .join("n2", at=drain_at + rejoin_gap))
        plane, oracle, values = run_reconfig_interleaving(seed, plan, {})
        assert oracle.ok, [v.as_dict() for v in oracle.violations]
        assert len(values) >= 8
        assert all(b > a for a, b in zip(values, values[1:]))
        assert sorted(plane.serving()) == ["n1", "n2", "n3"]
