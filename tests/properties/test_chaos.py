"""Chaos property tests: randomized fault schedules against the
system-level invariants.

Each example draws a random fault plan (crash times, targets, optional
recovery, partition windows) and checks the two guarantees the paper
makes unconditionally: the group clock never rolls back, and replicas
that answer, answer identically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import RpcTimeout
from repro.sim import FaultPlan

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)

CHAOS_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_with_faults(seed, plan, calls=12, style="active"):
    """Run `calls` invocations with retries while the plan executes.

    Returns the monotone sequence of answered values.
    """
    bed = make_testbed(seed=seed, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], style=style,
               time_source="cts")
    client = bed.client("n0")
    bed.start(settle=0.3)
    plan.arm(bed)

    def scenario():
        values = []
        attempts = 0
        while len(values) < calls and attempts < calls * 4:
            attempts += 1
            try:
                result, _ = yield from client.timed_call(
                    "svc", "get_time", timeout=0.5
                )
            except RpcTimeout:
                continue  # failover in progress; retry
            if result.ok:
                values.append(result.value)
        return values

    values = bed.run_process(scenario())
    bed.run(0.2)
    return bed, values


class TestChaos:
    @settings(**CHAOS_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        victim=st.sampled_from(["n1", "n2", "n3"]),
        crash_at=st.floats(min_value=0.001, max_value=0.05),
        recover=st.booleans(),
        style=st.sampled_from(["active", "semi-active"]),
    )
    def test_crash_chaos_monotone_and_agreeing(
        self, seed, victim, crash_at, recover, style
    ):
        plan = FaultPlan().crash(victim, at=crash_at)
        if recover:
            plan.recover(victim, at=crash_at + 0.8)
        bed, values = run_with_faults(seed, plan, style=style)
        assert len(values) >= 10
        assert all(b > a for a, b in zip(values, values[1:]))
        # Surviving replicas answered identically (client saw one value
        # per call and duplicates never contradicted it: verified by the
        # per-replica reading comparison below).
        survivors = [
            r for nid, r in bed.replicas("svc").items()
            if bed.cluster.node(nid).alive
        ]
        tails = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-5:]
            for r in survivors
            if len(r.time_source.readings) >= 5
        ]
        assert all(t == tails[0] for t in tails)

    @settings(**CHAOS_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        lone=st.sampled_from(["n1", "n2", "n3"]),
        cut_at=st.floats(min_value=0.001, max_value=0.03),
        cut_for=st.floats(min_value=0.05, max_value=0.4),
    )
    def test_partition_chaos_monotone(self, seed, lone, cut_at, cut_for):
        majority = {"n0", "n1", "n2", "n3"} - {lone}
        plan = (
            FaultPlan()
            .partition(majority, {lone}, at=cut_at)
            .heal(at=cut_at + cut_for)
        )
        bed, values = run_with_faults(seed, plan)
        assert len(values) >= 10
        assert all(b > a for a, b in zip(values, values[1:]))
