"""Property tests for the live wire format (framing + payload codec).

Whatever the live transport can encode must decode back to an equal
value, and no truncated or corrupted frame may crash the decoder — a
daemon's UDP port is fed by the network, not by friendly code.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CCSMessage
from repro.core.recovery import TimeTransferState
from repro.net.wire import (
    FrameError,
    HEADER_SIZE,
    MAGIC,
    WIRE_VERSION,
    decode_frame,
    decode_payload,
    encode_payload,
    frame,
    unframe,
)
from repro.replication import MsgType, make_envelope
from repro.rpc import Invocation, Result
from repro.shard.summary import ShardSummary
from repro.totem.messages import (
    JoinMessage,
    LostMessage,
    RegularMessage,
    RegularToken,
    RingBeacon,
    RingId,
)

identifiers = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=16,
)
seqs = st.integers(min_value=0, max_value=2**40)
ring_ids = st.builds(RingId, seq=seqs, representative=identifiers)
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=24),
)

envelopes = st.one_of(
    st.builds(
        lambda src, dst, conn, seq, sender, method, args: make_envelope(
            MsgType.REQUEST, src, dst, conn, seq, sender,
            body=Invocation(method, tuple(args)),
        ),
        identifiers, identifiers, seqs, seqs, identifiers, identifiers,
        st.lists(json_scalars, max_size=4),
    ),
    st.builds(
        lambda src, seq, sender, value: make_envelope(
            MsgType.REPLY, src, src, 1, seq, sender, body=Result(value=value),
        ),
        identifiers, seqs, identifiers, json_scalars,
    ),
    st.builds(
        lambda grp, seq, sender, thread, rnd, micros, special, covers:
        make_envelope(
            MsgType.CCS, grp, grp, 0, seq, sender,
            body=CCSMessage(thread, rnd, micros, 1, special=special,
                            covers_req=covers[0], covers_seq=covers[1]),
        ),
        identifiers, seqs, identifiers, identifiers, seqs,
        st.integers(min_value=0, max_value=2**60),
        st.booleans(),
        # (0, 0) is the legacy "no covering point" encoding.
        st.one_of(st.just((0, 0)),
                  st.tuples(st.integers(min_value=1, max_value=2**40),
                            st.integers(min_value=1, max_value=2**20))),
    ),
    st.builds(
        lambda grp, seq, sender, state: make_envelope(
            MsgType.GET_STATE, grp, grp, 0, seq, sender, body=state,
        ),
        identifiers, seqs, identifiers,
        st.builds(
            TimeTransferState,
            rounds=st.dictionaries(identifiers, seqs, max_size=3),
            accepted=st.dictionaries(identifiers, seqs, max_size=3),
            ops=st.dictionaries(
                identifiers,
                st.tuples(st.integers(min_value=0, max_value=2**40),
                          st.integers(min_value=0, max_value=2**20)),
                max_size=3,
            ),
            last_group_us=st.one_of(
                st.none(), st.integers(min_value=0, max_value=2**60)),
            causal_floor_us=st.one_of(
                st.none(), st.integers(min_value=0, max_value=2**60)),
        ),
    ),
)

payloads = st.one_of(
    envelopes,
    st.builds(
        RegularMessage,
        sender=identifiers, ring_id=ring_ids, seq=seqs, payload=envelopes,
    ),
    st.builds(
        RegularToken,
        ring_id=ring_ids, token_seq=seqs, seq=seqs, aru=seqs,
        aru_id=st.one_of(st.none(), identifiers),
        rtr=st.lists(seqs, max_size=5).map(tuple),
    ),
    st.builds(
        JoinMessage,
        sender=identifiers,
        proc_set=st.frozensets(identifiers, max_size=4),
        fail_set=st.frozensets(identifiers, max_size=4),
        ring_seq=seqs,
    ),
    st.builds(
        RingBeacon,
        sender=identifiers, ring_id=ring_ids,
    ),
    st.just(LostMessage()),
    st.builds(
        ShardSummary,
        shard=st.integers(min_value=0, max_value=2**16),
        group=identifiers,
        value_us=st.integers(min_value=-(2**60), max_value=2**60),
        offset_us=st.integers(min_value=-(2**60), max_value=2**60),
        round_seq=seqs,
        error_us=st.integers(min_value=0, max_value=2**40),
        signature=st.one_of(st.just(""), identifiers),
    ),
)


class TestRoundTrip:
    @settings(max_examples=150)
    @given(src=identifiers, payload=payloads)
    def test_encode_frame_decode_identity(self, src, payload):
        decoded_src, decoded = decode_frame(frame(src, encode_payload(payload)))
        assert decoded_src == src
        assert decoded == payload

    @settings(max_examples=80)
    @given(payload=payloads)
    def test_payload_decode_consumes_everything(self, payload):
        data = encode_payload(payload)
        decoded, offset = decode_payload(data, 0)
        assert decoded == payload
        assert offset == len(data)


class TestRejection:
    @settings(max_examples=80)
    @given(src=identifiers, payload=payloads, data=st.data())
    def test_truncated_frame_rejected(self, src, payload, data):
        encoded = frame(src, encode_payload(payload))
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        try:
            unframe(encoded[:cut])
        except FrameError:
            pass  # rejection is the expected outcome
        else:
            raise AssertionError("truncated frame accepted")

    @settings(max_examples=100)
    @given(junk=st.binary(max_size=64))
    def test_garbage_never_crashes_decoder(self, junk):
        try:
            decode_frame(junk)
        except FrameError:
            pass

    @settings(max_examples=60)
    @given(src=identifiers, payload=payloads, extra=st.binary(min_size=1, max_size=8))
    def test_trailing_garbage_rejected(self, src, payload, extra):
        encoded = frame(src, encode_payload(payload))
        try:
            decode_frame(encoded + extra)
        except FrameError:
            pass
        else:
            raise AssertionError("frame with trailing bytes accepted")

    @settings(max_examples=60)
    @given(src=identifiers, payload=payloads, flip=st.data())
    def test_header_corruption_rejected(self, src, payload, flip):
        encoded = bytearray(frame(src, encode_payload(payload)))
        index = flip.draw(st.integers(min_value=0, max_value=HEADER_SIZE - 1))
        delta = flip.draw(st.integers(min_value=1, max_value=255))
        encoded[index] = (encoded[index] + delta) % 256
        try:
            decoded_src, decoded = decode_frame(bytes(encoded))
        except FrameError:
            return
        # A length-byte flip that still parses must not change content
        # silently in the magic/version bytes.
        assert encoded[:2] == MAGIC
        assert encoded[2] == WIRE_VERSION
        assert (decoded_src, decoded) == (src, payload)
