"""Property-based tests of the system-level invariants (DESIGN.md §5).

Each example builds a full simulated deployment from a random seed and
schedule, so these are end-to-end invariant checks: agreement, strict
monotonicity, total order — under random clock epochs, drift, message
loss and crash timing.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)
from totem.helpers import TotemHarness  # noqa: E402

SIM_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTimeServiceInvariants:
    @settings(**SIM_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rounds=st.integers(min_value=2, max_value=12),
        spread=st.floats(min_value=0.0, max_value=120.0),
    )
    def test_agreement_and_monotonicity(self, seed, rounds, spread):
        bed = make_testbed(seed=seed, epoch_spread_s=spread)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "get_time", rounds)
        bed.run(0.05)
        # Strict monotonicity of the group clock.
        assert all(b > a for a, b in zip(values, values[1:]))
        # Agreement: identical readings at every replica (common suffix).
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-rounds:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
        # Offset identity at every replica for every committed round.
        for replica in bed.replicas("svc").values():
            for group_us, physical_us, offset_us in (
                replica.time_source.clock_state.history
            ):
                assert physical_us + offset_us == group_us

    @settings(**SIM_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_index=st.integers(min_value=1, max_value=3),
        style=st.sampled_from(["active", "passive", "semi-active"]),
    )
    def test_monotone_across_random_crash(self, seed, crash_index, style):
        bed = make_testbed(seed=seed, epoch_spread_s=60.0)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], style=style,
                   time_source="cts")
        client = bed.client("n0")
        bed.start(settle=0.3)
        before = call_n(bed, client, "svc", "get_time", 3)
        bed.crash(f"n{crash_index}")
        bed.run(0.8)
        after = call_n(bed, client, "svc", "get_time", 3)
        sequence = before + after
        assert all(b > a for a, b in zip(sequence, sequence[1:]))

    @settings(**SIM_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_wire_economy(self, seed):
        """#CCS transmissions == #decided rounds in failure-free runs."""
        bed = make_testbed(seed=seed)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.1)
        transmitted = sum(
            r.time_source.stats.ccs_transmitted
            for r in bed.replicas("svc").values()
        )
        decided = max(
            len(r.time_source.winners) for r in bed.replicas("svc").values()
        )
        assert transmitted == decided


class TestTotemInvariants:
    @settings(**SIM_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.integers(min_value=2, max_value=5),
        messages=st.integers(min_value=1, max_value=20),
        loss=st.sampled_from([0.0, 0.0, 0.02, 0.05]),
    )
    def test_total_order_under_loss(self, seed, num_nodes, messages, loss):
        harness = TotemHarness(num_nodes, seed=seed, loss_rate=loss)
        harness.run_until_operational(timeout=3.0)
        for i in range(messages):
            sender = harness.cluster.node_ids[i % num_nodes]
            harness.processors[sender].mcast(i)
        harness.run(0.8)
        orders = [tuple(r.payloads) for r in harness.recorders.values()]
        assert all(order == orders[0] for order in orders)
        assert sorted(orders[0]) == list(range(messages))

    @settings(**SIM_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        crash_after=st.floats(min_value=0.0, max_value=0.002),
    )
    def test_survivor_prefix_consistency_across_crash(self, seed, crash_after):
        """Virtual synchrony: survivors deliver identical sequences no
        matter when the sender crashes."""
        harness = TotemHarness(4, seed=seed)
        harness.run_until_operational()
        for i in range(15):
            harness.processors["n1"].mcast(i)
        harness.run(crash_after)
        harness.cluster.node("n1").crash()
        harness.run(0.6)
        survivors = ["n0", "n2", "n3"]
        orders = [tuple(harness.recorders[n].payloads) for n in survivors]
        assert orders[0] == orders[1] == orders[2]
