"""Byzantine property tests: lying and equivocating replicas under
arbitrary seeded schedules.

Each example makes one of four replicas adversarial at the wire
boundary — a fixed lie (the same biased CCS proposal to everyone) or an
equivocation (a different value per receiver, derived from the seed) —
with f = 1 < n/3 = 4/3 faulty.  The properties the authenticated mode
must preserve *among the correct replicas*:

* correct replicas never diverge: every correct replica serves the
  identical value sequence (the winner sanity filter rejects the liar's
  implausible round winners before they can commit anywhere);
* client reads stay strictly monotone across the whole run.

The schedules warm the cluster up with a few calls before the
misbehaviour starts: the drift-certified window anchors on the first
committed round, so a liar active from the very first round is outside
the threat model (documented in docs/chaos.md).

Magnitudes are drawn decisively outside the certified window (tens of
milliseconds against a ~10 ms byzantine allowance) but below the
10 s self-stabilization gap — the regime where a lie is unambiguous to
every correct replica.  The pinned regression cases at the bottom were
found by Hypothesis and are kept as plain deterministic tests.

One sim artefact matters for coverage: proposal coalescing suppresses a
replica's queued proposal once another's is ordered first, and in the
simulator the token ring is deterministic, so the replica at the ring
head (``n1``) originates nearly every CCS proposal.  A liar elsewhere in
the ring rarely gets a proposal onto the order — the property still has
to hold (and is checked for any liar), but the examples that *exercise*
the filter put the liar at the head.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.byzantine import ByzantineRules
from repro.errors import RpcTimeout
from repro.sim import FaultPlan

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)

BYZ_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: n = 4 replicas, so f = 1 liar satisfies f < n/3.
REPLICAS = ["n1", "n2", "n3", "n4"]


def run_byzantine(seed, liar, events, calls=12, warmup=3):
    """Drive `calls` invocations while `events` scripts the liar.

    ``events`` is a list of ``(at_s, kind, magnitude_us)`` with kind
    ``lie`` or ``equivocate``; times are relative to arming, which
    happens *after* ``warmup`` clean calls have anchored the filter.
    Returns ``(bed, values)`` — the monotone reply sequence.
    """
    bed = make_testbed(seed=seed, num_nodes=5, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, REPLICAS, style="active",
               time_source="cts", byzantine=True)
    rules = ByzantineRules(seed=seed)
    bed.cluster.network.mutator = rules.perturb
    client = bed.client("n0")
    bed.start(settle=0.3)

    def call_some(n):
        def scenario():
            values = []
            attempts = 0
            while len(values) < n and attempts < n * 4:
                attempts += 1
                try:
                    result, _ = yield from client.timed_call(
                        "svc", "get_time", timeout=0.5)
                except RpcTimeout:
                    continue
                if result.ok:
                    values.append(result.value)
            return values

        return bed.run_process(scenario())

    values = call_some(warmup)  # anchor the certified window
    plan = FaultPlan()
    for at, kind, magnitude in events:
        if kind == "lie":
            plan.call(lambda m=magnitude: rules.set_lie(liar, m), at=at)
        else:
            plan.call(lambda m=magnitude: rules.set_equivocate(liar, m),
                      at=at)
    plan.arm(bed)
    values += call_some(calls)
    bed.run(0.2)
    return bed, values


def correct_value_sequences(bed, liar):
    """Value sequences served by each correct replica, newest 8."""
    return [
        tuple(v.micros for _, _, _, v in r.time_source.readings)[-8:]
        for nid, r in bed.replicas("svc").items()
        if nid != liar and len(r.time_source.readings) >= 8
    ]


class TestByzantineProperties:
    @settings(**BYZ_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        liar=st.sampled_from(REPLICAS),
        bias=st.integers(min_value=50_000, max_value=200_000),
        lie_at=st.floats(min_value=0.0, max_value=0.02),
    )
    def test_lying_replica_never_diverges_correct_replicas(
        self, seed, liar, bias, lie_at
    ):
        bed, values = run_byzantine(
            seed, liar, [(lie_at, "lie", bias)])
        assert len(values) >= 10
        assert all(b > a for a, b in zip(values, values[1:]))
        sequences = correct_value_sequences(bed, liar)
        assert sequences and all(s == sequences[0] for s in sequences)

    @settings(**BYZ_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        spread=st.integers(min_value=100_000, max_value=300_000),
        start_at=st.floats(min_value=0.0, max_value=0.02),
    )
    def test_equivocating_replica_never_diverges(
        self, seed, spread, start_at
    ):
        # The liar sits at the ring head so its equivocated proposals
        # actually reach the total order (see module docstring).
        liar = "n1"
        bed, values = run_byzantine(
            seed, liar, [(start_at, "equivocate", spread)])
        assert len(values) >= 10
        assert all(b > a for a, b in zip(values, values[1:]))
        sequences = correct_value_sequences(bed, liar)
        assert sequences and all(s == sequences[0] for s in sequences)

    @settings(**BYZ_SETTINGS)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        bias=st.integers(min_value=50_000, max_value=150_000),
        spread=st.integers(min_value=100_000, max_value=200_000),
    )
    def test_lie_then_equivocate_schedule(self, seed, bias, spread):
        liar = "n1"
        # A compound schedule: lie, escalate to equivocation, then stop
        # misbehaving — the filter must hold through every phase and the
        # cluster must serve normally once the liar turns honest again.
        events = [
            (0.0, "lie", bias),
            (0.01, "equivocate", spread),
            (0.03, "lie", 0),
            (0.03, "equivocate", 0),
        ]
        bed, values = run_byzantine(seed, liar, events, calls=16)
        assert len(values) >= 12
        assert all(b > a for a, b in zip(values, values[1:]))
        sequences = correct_value_sequences(bed, liar)
        assert sequences and all(s == sequences[0] for s in sequences)


class TestPinnedRegressions:
    """Deterministic cases pinned from Hypothesis runs: decisive lies
    must actually hit the filter (winners rejected, never committed)."""

    def test_seed7_lying_proposer_rejections_observed(self):
        bed, values = run_byzantine(7, "n1", [(0.0, "lie", 150_000)])
        assert all(b > a for a, b in zip(values, values[1:]))
        rejected = sum(
            r.time_source.stats.winners_rejected
            for r in bed.replicas("svc").values())
        assert rejected > 0  # the lie reached the order and was filtered
        sequences = correct_value_sequences(bed, "n1")
        assert sequences and all(s == sequences[0] for s in sequences)

    def test_seed0_equivocation_rejected_everywhere(self):
        bed, values = run_byzantine(0, "n1", [(0.0, "equivocate", 200_000)])
        assert all(b > a for a, b in zip(values, values[1:]))
        rejected = sum(
            r.time_source.stats.winners_rejected
            for r in bed.replicas("svc").values())
        assert rejected > 0
        sequences = correct_value_sequences(bed, "n1")
        assert sequences and all(s == sequences[0] for s in sequences)

    def test_filter_disarmed_without_byzantine_mode(self):
        # Sanity for the flag itself: the same lie against a cluster
        # with byzantine=False is committed (consistently, since a fixed
        # lie is the same value everywhere) — the filter is opt-in.
        bed = make_testbed(seed=3, num_nodes=5, epoch_spread_s=30.0)
        bed.deploy("svc", ClockApp, REPLICAS, style="active",
                   time_source="cts")
        service = next(iter(bed.replicas("svc").values())).time_source
        assert service.byzantine is False
        assert service.stats.winners_rejected == 0
