"""Make the shared test helpers (``support.py``) importable everywhere.

This is the one sanctioned ``sys.path`` edit for the test tree: every
test module imports ``support`` (and friends) relying on this conftest
instead of repeating a per-file ``sys.path.insert``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
