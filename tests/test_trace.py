"""Tests for the structured tracing facility."""

import pytest

from repro import trace

from support import ClockApp, call_n, make_testbed  # noqa: E402


class TestTracerUnit:
    def test_disabled_by_default(self):
        assert not trace.TRACER.enabled

    def test_subscribe_and_emit(self):
        events = []
        unsubscribe = trace.subscribe(events.append)
        try:
            trace.emit("test.kind", "n9", detail=42)
        finally:
            unsubscribe()
        assert len(events) == 1
        assert events[0].kind == "test.kind"
        assert events[0].node == "n9"
        assert events[0].fields == {"detail": 42}

    def test_unsubscribe_stops_delivery(self):
        events = []
        unsubscribe = trace.subscribe(events.append)
        unsubscribe()
        trace.emit("test.kind", "n9")
        assert events == []

    def test_unsubscribe_is_idempotent(self):
        events = []
        unsubscribe = trace.subscribe(events.append)
        unsubscribe()
        unsubscribe()  # second call must be a harmless no-op
        trace.emit("test.kind", "n9")
        assert events == []

    def test_unsubscribe_is_scoped_to_its_registration(self):
        """Regression: subscribing the same callable twice used to let one
        unsubscribe handle (called repeatedly) strip both registrations."""
        events = []
        first = trace.subscribe(events.append)
        second = trace.subscribe(events.append)
        first()
        first()  # repeat release of the same handle
        try:
            trace.emit("test.kind", "n9")
            # The second registration must still be attached.
            assert len(events) == 1
        finally:
            second()
        trace.emit("test.kind", "n9")
        assert len(events) == 1

    def test_capture_filters_by_prefix(self):
        with trace.capture(kinds=["a."]) as events:
            trace.emit("a.one", "n1")
            trace.emit("b.two", "n1")
        assert [e.kind for e in events] == ["a.one"]

    def test_event_str(self):
        event = trace.TraceEvent("round.won", "n2", {"round": 3})
        assert "[n2] round.won round=3" == str(event)


class TestProtocolTraces:
    def test_round_events_emitted(self):
        bed = make_testbed(seed=170)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        with trace.capture(kinds=["round."]) as events:
            call_n(bed, client, "svc", "get_time", 3)
            bed.run(0.05)
        kinds = {e.kind for e in events}
        assert "round.start" in kinds
        assert "round.won" in kinds
        # Each replica starts each round once.
        starts = [e for e in events if e.kind == "round.start"]
        assert len(starts) == 9  # 3 rounds x 3 replicas

    def test_totem_token_events_emitted(self):
        bed = make_testbed(seed=174)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        with trace.capture(kinds=["totem."]) as events:
            call_n(bed, client, "svc", "get_time", 3)
        forwards = [e for e in events if e.kind == "totem.token.forward"]
        assert forwards, "token circulation must be traced"
        fields = forwards[0].fields
        assert {"to", "token_seq", "seq", "aru", "ring"} <= set(fields)

    def test_totem_retransmissions_traced_under_loss(self):
        bed = make_testbed(seed=175, loss_rate=0.12)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start(settle=0.5)
        with trace.capture(kinds=["totem."]) as events:
            call_n(bed, client, "svc", "get_time", 10, timeout=5.0)
        kinds = {e.kind for e in events}
        # With 12% loss some data messages and/or tokens must be re-sent.
        assert ("totem.retransmit" in kinds
                or "totem.token.retransmit" in kinds)

    def test_membership_events_emitted(self):
        bed = make_testbed(seed=171)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="local")
        with trace.capture(kinds=["membership."]) as events:
            bed.start()
            bed.crash("n2")
            bed.run(0.4)
        kinds = [e.kind for e in events]
        assert "membership.gather" in kinds
        assert "membership.install" in kinds

    def test_promotion_and_state_events(self):
        bed = make_testbed(seed=172)
        bed.deploy(
            "svc", ClockApp, ["n1", "n2", "n3"],
            style="passive", time_source="cts", checkpoint_interval=2,
        )
        client = bed.client("n0")
        bed.start(settle=0.3)
        with trace.capture(kinds=["replica.", "state."]) as events:
            call_n(bed, client, "svc", "get_time", 4)
            primary = next(
                nid for nid, r in bed.replicas("svc").items() if r.is_primary
            )
            bed.crash(primary)
            bed.run(0.6)
        kinds = {e.kind for e in events}
        assert "replica.checkpoint" in kinds
        assert "replica.promote" in kinds

    def test_state_transfer_traced(self):
        bed = make_testbed(seed=173)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 2)
        with trace.capture(kinds=["state."]) as events:
            bed.add_replica("svc", "n3", ClockApp, time_source="cts")
            bed.run(0.5)
        kinds = [e.kind for e in events]
        assert "state.served" in kinds
        assert "state.applied" in kinds
