"""Tests for the high-level Testbed assembly API."""

import pytest

from repro import Testbed
from repro.baselines import LocalClockSource
from repro.core import ConsistentTimeService, MODE_ACTIVE, MODE_PRIMARY
from repro.errors import ConfigurationError
from repro.sim import ClusterConfig

from support import ClockApp, call_n  # noqa: E402  (tests/ is on sys.path)


class TestDeployment:
    def test_default_testbed_is_paper_shaped(self):
        bed = Testbed()
        assert sorted(bed.processors) == ["n0", "n1", "n2", "n3"]
        assert sorted(bed.runtimes) == ["n0", "n1", "n2", "n3"]

    def test_unknown_style_rejected(self):
        bed = Testbed()
        with pytest.raises(ConfigurationError, match="unknown style"):
            bed.deploy("svc", ClockApp, ["n1"], style="byzantine")

    def test_unknown_time_source_rejected(self):
        bed = Testbed()
        with pytest.raises(ConfigurationError, match="unknown time source"):
            bed.deploy("svc", ClockApp, ["n1"], time_source="sundial")

    def test_duplicate_group_rejected(self):
        bed = Testbed()
        bed.deploy("svc", ClockApp, ["n1"])
        with pytest.raises(ConfigurationError, match="already deployed"):
            bed.deploy("svc", ClockApp, ["n2"])

    def test_cts_mode_follows_style(self):
        bed = Testbed()
        bed.deploy("a", ClockApp, ["n1"], style="active", time_source="cts")
        bed.deploy("p", ClockApp, ["n2"], style="passive", time_source="cts")
        bed.deploy("s", ClockApp, ["n3"], style="semi-active", time_source="cts")
        assert bed.replicas("a")["n1"].time_source.mode == MODE_ACTIVE
        assert bed.replicas("p")["n2"].time_source.mode == MODE_PRIMARY
        assert bed.replicas("s")["n3"].time_source.mode == MODE_PRIMARY

    def test_custom_time_source_factory(self):
        bed = Testbed()
        created = []

        def factory(replica):
            source = LocalClockSource(replica)
            created.append(source)
            return source

        bed.deploy("svc", ClockApp, ["n1"], time_source=factory)
        assert len(created) == 1
        assert bed.replicas("svc")["n1"].time_source is created[0]

    def test_deploy_after_start(self):
        bed = Testbed(seed=3)
        bed.start()
        bed.deploy("late", ClockApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.run(0.3)
        values = call_n(bed, client, "late", "get_time", 2)
        assert len(values) == 2

    def test_start_is_idempotent(self):
        bed = Testbed()
        bed.start()
        bed.start()  # no error


class TestFailureHelpers:
    def test_crash_removes_replica_entry(self):
        bed = Testbed(seed=4)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="local")
        bed.start()
        bed.crash("n1")
        assert "n1" not in bed.replicas("svc")
        assert not bed.cluster.node("n1").alive

    def test_recover_rebuilds_protocol_stack(self):
        bed = Testbed(seed=5)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="local")
        bed.start()
        old_processor = bed.processors["n1"]
        bed.crash("n1")
        bed.run(0.3)
        bed.recover("n1")
        assert bed.processors["n1"] is not old_processor
        assert bed.cluster.node("n1").alive
        bed.run(0.5)
        assert bed.processors["n1"].is_operational
