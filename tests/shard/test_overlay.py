"""Gradient steering and summary exchange: units plus a small sim run."""

import pytest

from repro.core import GradientSteering
from repro.net.daemon import TimeApp
from repro.shard import (
    GradientOverlay,
    OverlayConfig,
    ShardedTestbed,
    ShardRouter,
    ShardSummary,
)


class TestGradientSteering:
    def test_negative_deltas_are_ignored(self):
        steering = GradientSteering()
        steering.observe_neighbor_delta(-500)
        assert steering.pending_us == 0
        assert steering.adjust_proposal(1_000) == 1_000

    def test_largest_lead_wins(self):
        steering = GradientSteering()
        steering.observe_neighbor_delta(300)
        steering.observe_neighbor_delta(150)
        assert steering.pending_us == 300

    def test_step_is_proportional_and_capped(self):
        steering = GradientSteering(0.5, max_step_us=200)
        steering.observe_neighbor_delta(100)
        assert steering.adjust_proposal(0) == 50  # p * delta
        steering.observe_neighbor_delta(10_000)
        assert steering.adjust_proposal(0) == 200  # capped
        assert steering.steps_applied == 2

    def test_pending_is_consumed_once(self):
        steering = GradientSteering()
        steering.observe_neighbor_delta(400)
        first = steering.adjust_proposal(0)
        assert first > 0
        assert steering.adjust_proposal(0) == 0
        assert steering.pending_us == 0

    def test_alignment_jump_applies_the_full_delta(self):
        steering = GradientSteering(align_threshold_us=10_000)
        steering.observe_neighbor_delta(5_000_000)
        assert steering.adjust_proposal(7) == 7 + 5_000_000
        assert steering.align_jumps == 1

    def test_fast_path_reads_never_consume_the_correction(self):
        # A step spent on a local fast-path read lives only in one
        # replica's fast floor; the hook must save it for a proposal.
        steering = GradientSteering()
        steering.observe_neighbor_delta(400)
        assert steering.adjust_fast_value(123) == 123
        assert steering.pending_us == 400

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientSteering(0.0)
        with pytest.raises(ValueError):
            GradientSteering(max_step_us=0)
        with pytest.raises(ValueError):
            GradientSteering(max_step_us=500, align_threshold_us=500)


class TestShardSummary:
    def test_sign_and_verify(self):
        summary = ShardSummary(shard=1, group="shard1", value_us=123,
                               offset_us=45, round_seq=6, error_us=7)
        signed = summary.sign("secret")
        assert signed.verify("secret")
        assert not signed.verify("other")

    def test_tampered_value_fails_verification(self):
        signed = ShardSummary(shard=1, group="shard1", value_us=123,
                              offset_us=45, round_seq=6,
                              error_us=7).sign("secret")
        from dataclasses import replace
        assert not replace(signed, value_us=999).verify("secret")

    def test_open_mode_accepts_unsigned(self):
        summary = ShardSummary(shard=0, group="shard0", value_us=1,
                               offset_us=0, round_seq=1, error_us=0)
        assert summary.verify(None)


class TestOverlayConvergence:
    def test_shards_align_and_stay_inside_the_hop_bound(self):
        bed = ShardedTestbed(shards=2, shard_size=3, seed=3)
        bed.deploy_shards(TimeApp)
        config = OverlayConfig(secret="t")
        overlay = GradientOverlay(bed, config)
        router = ShardRouter(bed)
        bed.start()
        overlay.start()

        def worker(key):
            session = router.session(key)
            while bed.sim.now < 2.0:
                yield from router.call(session)
                yield bed.sim.timeout(0.002)

        for index in range(4):
            bed.sim.process(worker(f"c{index}"), name=f"w{index}")
        bed.run(2.2)

        # Initial epochs sit seconds apart; the overlay must have jumped
        # them together and then held the post-warmup envelope.
        envelope = overlay.skew.envelope()
        assert envelope["samples"] > 0
        assert envelope["max_hop_skew_us"] <= config.hop_bound_us
        assert overlay.summaries_sent > 0
        assert overlay.summaries_received > 0
        assert overlay.summaries_rejected == 0

    def test_bad_signature_is_rejected_and_not_steered(self):
        bed = ShardedTestbed(shards=2, shard_size=3, seed=0)
        bed.deploy_shards(TimeApp)
        overlay = GradientOverlay(bed, OverlayConfig(secret="right"))
        forged = ShardSummary(shard=0, group="shard0",
                              value_us=10**9, offset_us=0, round_seq=1,
                              error_us=0).sign("wrong")
        overlay._on_summary(bed.client_node_of(1), forged)
        assert overlay.summaries_rejected == 1
        assert bed.steerings == {} or all(
            s.pending_us == 0 for s in bed.steerings.values())
