"""Sharded testbed topology and the routing tier.

Ring isolation is the load-bearing property: N Totem rings share one
simulated LAN, and only the per-shard multicast domains keep their
membership protocols from merging.  The router tests pin the
cross-shard session semantics — monotone reads across a migration.
"""

from repro.net.daemon import TimeApp
from repro.rpc import unwrap
from repro.shard import ShardedTestbed, ShardRouter
from repro.shard.cluster import shard_nodes


class TestTopology:
    def test_each_shard_runs_its_own_ring(self):
        bed = ShardedTestbed(shards=3, shard_size=3, seed=0)
        bed.deploy_shards(TimeApp)
        bed.start()
        bed.run(1.0)
        for shard in range(3):
            expected = set(shard_nodes(shard, 3))
            for node_id in bed.server_nodes_of(shard):
                members = set(bed.processors[node_id].members)
                # A merged ring would list nodes from other shards.
                assert members, node_id
                assert members <= expected, (node_id, members)

    def test_every_shard_serves_time(self):
        bed = ShardedTestbed(shards=3, shard_size=3, seed=0)
        bed.deploy_shards(TimeApp)
        bed.start()
        values = {}

        def probe(shard):
            client = bed.shard_client(shard)
            result = yield client.call(
                bed.group_of(shard), "gettimeofday", None, timeout=2.0)
            values[shard] = unwrap(result)

        for shard in range(3):
            bed.sim.process(probe(shard), name=f"probe{shard}")
        bed.run(2.0)
        assert sorted(values) == [0, 1, 2]
        for reply in values.values():
            assert reply["micros"] > 0

    def test_node_naming_roundtrip(self):
        bed = ShardedTestbed(shards=2, shard_size=3, seed=0)
        for shard in range(2):
            for node_id in bed.server_nodes_of(shard):
                assert bed.shard_of_node(node_id) == shard
            assert bed.shard_of_node(bed.client_node_of(shard)) == shard
        assert bed.shard_of_group(bed.group_of(1)) == 1


class TestRouterMigration:
    def test_reads_stay_monotone_across_a_migration(self):
        bed = ShardedTestbed(shards=2, shard_size=3, seed=1)
        bed.deploy_shards(TimeApp)
        router = ShardRouter(bed)
        bed.start()
        values = []

        def driver():
            session = router.session("mover")
            home = bed.ring.owner("mover")
            for _ in range(5):
                reply = yield from router.call(session)
                values.append(reply["micros"])
            # Force a migration: drop the session's home shard from the
            # routing ring mid-stream.
            bed.ring.remove(home)
            for _ in range(5):
                reply = yield from router.call(session)
                values.append(reply["micros"])
            assert session.migrations >= 1
            bed.ring.add(home)

        bed.sim.process(driver(), name="driver")
        bed.run(3.0)
        assert len(values) == 10
        # The floor travelled with the session: strictly increasing
        # across the shard switch, even though the shards' group clocks
        # are seconds apart before the overlay aligns them.
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_sessions_are_sticky_without_topology_change(self):
        bed = ShardedTestbed(shards=3, shard_size=3, seed=0)
        bed.deploy_shards(TimeApp)
        router = ShardRouter(bed)
        bed.start()

        def driver():
            session = router.session("stable")
            for _ in range(6):
                yield from router.call(session)
            assert session.migrations == 0

        bed.sim.process(driver(), name="driver")
        bed.run(2.0)
        assert router.calls_routed == 6
