"""Sharded chaos: DSL compilation, pinned schedule, and one full run."""

import pytest

from repro.chaos import load_scenario
from repro.chaos.scenario import compile_plan, scenario_from_dict
from repro.errors import ConfigurationError
from repro.shard import run_shard_chaos
from repro.shard.cluster import shard_nodes

#: The canonical hash of examples/chaos_shards.yaml's compiled schedule.
#: It pins the shard-scoped partition expansion byte-for-byte: editing
#: the scenario, the shard node-naming scheme, or the DSL's partition
#: compilation will change it and must be a conscious decision.
PINNED_SCHEDULE_HASH = (
    "fc33a65abbb6987b0a9d4b4fff4ddd62eec0cc9d21e7349127ad7c692ecc11fd")


class TestShardScenarioDSL:
    def test_example_scenario_hash_is_pinned(self):
        scenario = load_scenario("examples/chaos_shards.yaml")
        assert scenario.shards == 3
        plan = compile_plan(scenario)
        assert plan.schedule_hash() == PINNED_SCHEDULE_HASH

    def test_shard_scoped_partition_expands_to_shard_nodes(self):
        scenario = scenario_from_dict({
            "name": "t",
            "shards": 2,
            "shard_size": 3,
            "duration": 2.0,
            "events": [{"at": 1.0, "partition": {"shards": [0]}}],
        })
        plan = compile_plan(scenario)
        event = plan.schedule()[0]
        components = event.target
        assert sorted(components[0]) == sorted(shard_nodes(0, 3))
        # Every non-partitioned node lands in the second component.
        assert sorted(components[1]) == sorted(shard_nodes(1, 3))

    def test_nodes_and_shards_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict({
                "name": "t", "shards": 2, "nodes": ["n0"],
                "events": [],
            })

    def test_unknown_shard_in_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_plan(scenario_from_dict({
                "name": "t", "shards": 2, "duration": 2.0,
                "events": [{"at": 1.0, "partition": {"shards": [5]}}],
            }))

    def test_flat_scenario_requires_flat_runner(self):
        scenario = scenario_from_dict({
            "name": "t", "duration": 1.0, "events": [],
        })
        with pytest.raises(ConfigurationError):
            run_shard_chaos(scenario)


class TestShardChaosRun:
    def test_example_scenario_runs_clean(self):
        scenario = load_scenario("examples/chaos_shards.yaml")
        verdict = run_shard_chaos(scenario, seed=7)
        assert verdict["schedule_hash"] == PINNED_SCHEDULE_HASH
        assert verdict["ok"], verdict["oracle"]["violations"]
        assert verdict["faults_injected"] == 4
        assert verdict["faults_pending"] == 0
        assert verdict["clients"]["calls"] > 0
        assert verdict["oracle"]["replies_checked"] > 0
        assert verdict["oracle"]["shard_summaries_checked"] > 0
        # The built-in drill migrated sessions off shard 2 and back.
        assert verdict["migration_drill"]["removed"]
        assert verdict["migration_drill"]["restored"]
        assert verdict["migration_drill"]["migrations"] > 0
        envelope = verdict["overlay"]["skew_envelope"]
        assert envelope["samples"] > 0
        assert envelope["max_skew_us"] > 0
