"""Property tests for the shard placement ring.

The routing tier leans on three ring properties: *determinism* (every
gateway computes the same owner for a key), *balance* (virtual nodes
spread a large key population roughly evenly), and *minimal
reassignment* (adding or removing a shard only moves the keys that
must move — everything else keeps its owner, which is what keeps
migrations rare and floors cheap to carry).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import HashRing, RendezvousHash

members_strategy = st.lists(
    st.integers(min_value=0, max_value=63), min_size=2, max_size=8,
    unique=True)


def spread(ring, keys):
    counts = Counter(ring.owner(key) for key in keys)
    for member in ring.members:
        counts.setdefault(member, 0)
    return counts


class TestDeterminism:
    @given(members=members_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=50, deadline=None)
    def test_two_instances_agree_on_every_key(self, members, seed):
        a = HashRing(members)
        b = HashRing(list(reversed(members)))  # insertion order irrelevant
        keys = [f"k{seed}-{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    @given(members=members_strategy)
    @settings(max_examples=25, deadline=None)
    def test_rendezvous_agrees_with_itself(self, members):
        a = RendezvousHash(members)
        b = RendezvousHash(list(reversed(members)))
        keys = [f"key-{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]


class TestBalance:
    def test_10k_keys_balance_within_ratio(self):
        # The acceptance bar from the issue: with the default virtual
        # node count, 10k uniform keys land max/min <= ~2x.
        for shards in (3, 4, 8):
            ring = HashRing(list(range(shards)))
            counts = spread(ring, (f"client-{i}" for i in range(10_000)))
            assert min(counts.values()) > 0
            ratio = max(counts.values()) / min(counts.values())
            assert ratio <= 2.2, (shards, counts, ratio)

    def test_rendezvous_balance(self):
        ring = RendezvousHash(list(range(5)))
        counts = spread(ring, (f"client-{i}" for i in range(10_000)))
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) <= 1.5


class TestMinimalReassignment:
    @given(members=members_strategy, new=st.integers(64, 127))
    @settings(max_examples=25, deadline=None)
    def test_adding_only_moves_keys_to_the_new_member(self, members, new):
        before = HashRing(members)
        keys = [f"client-{i}" for i in range(500)]
        owners = {k: before.owner(k) for k in keys}
        before.add(new)
        for key in keys:
            owner = before.owner(key)
            assert owner == owners[key] or owner == new

    @given(members=members_strategy, index=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_removing_only_moves_the_removed_members_keys(
            self, members, index):
        victim = members[index % len(members)]
        ring = HashRing(members)
        keys = [f"client-{i}" for i in range(500)]
        owners = {k: ring.owner(k) for k in keys}
        ring.remove(victim)
        for key in keys:
            if owners[key] != victim:
                assert ring.owner(key) == owners[key]

    def test_add_then_remove_restores_assignment(self):
        ring = HashRing([0, 1, 2])
        keys = [f"client-{i}" for i in range(500)]
        owners = {k: ring.owner(k) for k in keys}
        ring.add(3)
        ring.remove(3)
        assert {k: ring.owner(k) for k in keys} == owners


class TestNeighbors:
    def test_singleton_has_no_neighbors(self):
        assert HashRing([7]).neighbors(7) == ()

    def test_pair_has_one_neighbor(self):
        ring = HashRing([0, 1])
        assert ring.neighbors(0) == (1,)
        assert ring.neighbors(1) == (0,)

    def test_ring_neighbors_are_symmetric(self):
        ring = HashRing(list(range(5)))
        for member in range(5):
            for neighbor in ring.neighbors(member):
                assert member in ring.neighbors(neighbor)

    def test_order_is_a_permutation_of_members(self):
        ring = HashRing(list(range(6)))
        assert sorted(ring.order()) == list(range(6))