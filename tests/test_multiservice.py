"""Multiple replicated services multiplexed over one Totem ring."""

import pytest

from support import ClockApp, CounterApp, call_n, make_testbed  # noqa: E402


class TestMultipleServices:
    def test_services_are_isolated(self):
        bed = make_testbed(seed=260)
        bed.deploy("count-a", CounterApp, ["n1", "n2"], time_source="local")
        bed.deploy("count-b", CounterApp, ["n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        assert call_n(bed, client, "count-a", "increment", 3) == [1, 2, 3]
        assert call_n(bed, client, "count-b", "increment", 2) == [1, 2]
        bed.run(0.1)
        assert bed.replicas("count-a")["n1"].app.count == 3
        assert bed.replicas("count-b")["n3"].app.count == 2

    def test_two_cts_groups_have_independent_group_clocks(self):
        bed = make_testbed(seed=261, epoch_spread_s=30.0)
        bed.deploy("clock-a", ClockApp, ["n1", "n2"], time_source="cts")
        bed.deploy("clock-b", ClockApp, ["n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start()
        values_a = call_n(bed, client, "clock-a", "get_time", 4)
        values_b = call_n(bed, client, "clock-b", "get_time", 4)
        # Each group's clock is internally monotone...
        assert all(b > a for a, b in zip(values_a, values_a[1:]))
        assert all(b > a for a, b in zip(values_b, values_b[1:]))
        # ...and each group is internally consistent.
        bed.run(0.1)
        for group in ("clock-a", "clock-b"):
            readings = [
                tuple(v.micros for _, _, _, v in r.time_source.readings)[-4:]
                for r in bed.replicas(group).values()
            ]
            assert readings[0] == readings[1]

    def test_shared_node_hosts_both_replicas(self):
        bed = make_testbed(seed=262)
        bed.deploy("alpha", CounterApp, ["n1", "n2"], time_source="local")
        bed.deploy("beta", CounterApp, ["n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "alpha", "increment", 2)
        call_n(bed, client, "beta", "increment", 5)
        bed.run(0.1)
        shared_alpha = bed.replicas("alpha")["n2"]
        shared_beta = bed.replicas("beta")["n2"]
        assert shared_alpha.app.count == 2
        assert shared_beta.app.count == 5

    def test_crash_affects_both_services_on_node(self):
        bed = make_testbed(seed=263)
        bed.deploy("alpha", CounterApp, ["n1", "n2"], time_source="local")
        bed.deploy("beta", CounterApp, ["n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "alpha", "increment", 1)
        call_n(bed, client, "beta", "increment", 1)
        bed.crash("n2")
        bed.run(0.5)
        # Both groups lost their n2 member but survive on the other node.
        assert call_n(bed, client, "alpha", "increment", 1) == [2]
        assert call_n(bed, client, "beta", "increment", 1) == [2]
        assert bed.replicas("alpha")["n1"].view.members == ("n1",)
        assert bed.replicas("beta")["n3"].view.members == ("n3",)


class TestConcurrentClients:
    def test_interleaved_clients_yield_one_total_order(self):
        bed = make_testbed(seed=264)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client_a = bed.client("n0", "client-a")
        client_b = bed.client("n0", "client-b")
        bed.start()

        results = {"a": [], "b": []}

        def caller(client, tag, n):
            def scenario():
                for _ in range(n):
                    result, _ = yield from client.timed_call(
                        "svc", "increment", timeout=3.0
                    )
                    results[tag].append(result.value)
            return scenario()

        proc_a = bed.sim.process(caller(client_a, "a", 6), name="a")
        proc_b = bed.sim.process(caller(client_b, "b", 6), name="b")
        bed.run(2.0)
        assert proc_a.triggered and proc_b.triggered
        merged = sorted(results["a"] + results["b"])
        # Twelve increments, each applied exactly once, in one order.
        assert merged == list(range(1, 13))
        # Each client saw strictly increasing counter values.
        assert results["a"] == sorted(results["a"])
        assert results["b"] == sorted(results["b"])

    def test_concurrent_clients_with_cts_stay_monotone(self):
        bed = make_testbed(seed=265)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client_a = bed.client("n0", "client-a")
        client_b = bed.client("n2", "client-b")
        bed.start()

        stamps = []

        def caller(client, n):
            def scenario():
                for _ in range(n):
                    result, _ = yield from client.timed_call(
                        "svc", "get_time", timeout=3.0
                    )
                    stamps.append(result.value)
            return scenario()

        proc_a = bed.sim.process(caller(client_a, 5), name="a")
        proc_b = bed.sim.process(caller(client_b, 5), name="b")
        bed.run(2.0)
        assert proc_a.triggered and proc_b.triggered
        assert len(stamps) == 10
        # The group clock hands out unique, replica-consistent values.
        assert len(set(stamps)) == 10
        bed.run(0.1)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-10:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
