"""Scenario files: the YAML-subset parser, validation, and the
compile-to-FaultPlan path with its reproducibility pin."""

import json
from pathlib import Path

import pytest

from repro.chaos.scenario import (
    ChaosScenario,
    compile_plan,
    load_scenario,
    parse_simple_yaml,
    scenario_from_dict,
)
from repro.errors import ConfigurationError

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE = EXAMPLES / "chaos_partition.yaml"
BYZANTINE_EXAMPLE = EXAMPLES / "chaos_byzantine.yaml"

#: The committed scenario's seeded schedule digest.  If this changes,
#: every recorded chaos verdict stops being reproducible — update the
#: EXPERIMENTS.md entry in the same commit, or don't change the hash.
EXAMPLE_SCHEDULE_HASH = (
    "f49fc35322afb80ab08a11bc06987fdaa54e9ef93b8c8ed77eb9766abdc8fc0f")

#: Same pin for the Byzantine scenario.  This one also guards the
#: canonicalization of the lie/equivocate/corrupt-state event kinds:
#: their targets must keep hashing exactly as they do today.
BYZANTINE_SCHEDULE_HASH = (
    "8de80eefae409ad746c4f4af387482a5d70fe63e20f93379432f5e0f677a1dab")

RECONFIG_EXAMPLE = EXAMPLES / "chaos_reconfig.yaml"

#: Pin for the reconfiguration scenario: guards the drain/join event
#: kinds' canonical form alongside the schedule itself.
RECONFIG_SCHEDULE_HASH = (
    "152dc353661ce867fbdb380e6a59ddc2a56978dddbcf86472e112e9054cb36c2")


class TestYamlSubset:
    def test_scalars(self):
        doc = parse_simple_yaml(
            "a: 1\nb: 2.5\nc: true\nd: false\ne: null\nf: hello\n"
            "g: 'quoted: text'\n")
        assert doc == {"a": 1, "b": 2.5, "c": True, "d": False, "e": None,
                       "f": "hello", "g": "quoted: text"}

    def test_comments_and_blank_lines(self):
        doc = parse_simple_yaml(
            "# leading comment\n\na: 1  # trailing\nb: 'kept # inside'\n")
        assert doc == {"a": 1, "b": "kept # inside"}

    def test_flow_lists_nest(self):
        doc = parse_simple_yaml("p: [[n0, n1], [n2]]\n")
        assert doc == {"p": [["n0", "n1"], ["n2"]]}

    def test_block_list_of_scalars(self):
        doc = parse_simple_yaml("xs:\n  - 1\n  - two\n  - 3.0\n")
        assert doc == {"xs": [1, "two", 3.0]}

    def test_block_list_of_mappings_with_continuation(self):
        doc = parse_simple_yaml(
            "events:\n"
            "  - at: 1.0\n"
            "    drop: 0.05\n"
            "  - at: 2.0\n"
            "    partition: [[n0], [n1]]\n")
        assert doc == {"events": [
            {"at": 1.0, "drop": 0.05},
            {"at": 2.0, "partition": [["n0"], ["n1"]]},
        ]}

    def test_nested_mapping(self):
        doc = parse_simple_yaml("outer:\n  inner: 1\n  other: 2\n")
        assert doc == {"outer": {"inner": 1, "other": 2}}

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate key"):
            parse_simple_yaml("a: 1\na: 2\n")

    def test_tab_indentation_rejected(self):
        with pytest.raises(ConfigurationError, match="tabs"):
            parse_simple_yaml("a:\n\tb: 1\n")

    def test_missing_colon_rejected(self):
        with pytest.raises(ConfigurationError, match="key: value"):
            parse_simple_yaml("just some words\n")


class TestScenarioValidation:
    def base(self, **overrides):
        data = {"name": "t", "nodes": 3, "duration": 5.0, "clients": 1,
                "events": [{"at": 1.0, "crash": "n0"}]}
        data.update(overrides)
        return data

    def test_int_nodes_expand_to_ids(self):
        scenario = scenario_from_dict(self.base(nodes=4))
        assert scenario.node_ids == ["n0", "n1", "n2", "n3"]

    def test_explicit_node_list_kept(self):
        scenario = scenario_from_dict(self.base(nodes=["a", "b"]))
        assert scenario.node_ids == ["a", "b"]

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario key"):
            scenario_from_dict(self.base(chaos_level=11))

    def test_bad_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="nodes"):
            scenario_from_dict(self.base(nodes=0))
        with pytest.raises(ConfigurationError, match="nodes"):
            scenario_from_dict(self.base(nodes=[1, 2]))

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            scenario_from_dict(self.base(duration=0))

    def test_bad_clients_rejected(self):
        with pytest.raises(ConfigurationError, match="clients"):
            scenario_from_dict(self.base(clients=0))

    def test_event_missing_at_rejected(self):
        with pytest.raises(ConfigurationError, match="missing 'at'"):
            scenario_from_dict(self.base(events=[{"crash": "n0"}]))

    def test_event_needs_exactly_one_kind(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            scenario_from_dict(self.base(events=[{"at": 1.0}]))
        with pytest.raises(ConfigurationError, match="exactly one"):
            scenario_from_dict(
                self.base(events=[{"at": 1.0, "crash": "n0", "heal": True}]))

    def test_non_mapping_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            scenario_from_dict([1, 2, 3])


class TestCompile:
    def test_example_compiles_to_expected_kinds(self):
        scenario = load_scenario(EXAMPLE)
        plan = compile_plan(scenario)
        assert [e.kind for e in plan.schedule()] == [
            "drop", "partition", "heal", "crash", "recover"]

    def test_partition_must_be_list_of_lists(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "partition": ["n0", "n1"]}]})
        with pytest.raises(ConfigurationError, match="list of node lists"):
            compile_plan(scenario)

    def test_compile_error_names_the_event(self):
        scenario = scenario_from_dict({"events": [{"at": 1.0, "drop": 1.5}]})
        with pytest.raises(ConfigurationError, match="event #0"):
            compile_plan(scenario)

    def test_byzantine_example_compiles_to_expected_kinds(self):
        scenario = load_scenario(BYZANTINE_EXAMPLE)
        assert scenario.auth is True
        plan = compile_plan(scenario)
        assert [e.kind for e in plan.schedule()] == [
            "lie", "equivocate", "corrupt-state", "lie", "equivocate"]

    def test_lie_event_carries_node_and_bias(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "lie": "n2", "bias": 50_000}]})
        (event,) = compile_plan(scenario).schedule()
        assert event.kind == "lie"
        assert event.target == ("n2", 50_000)

    def test_equivocate_event_carries_node_and_spread(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "equivocate": "n2", "spread": 80_000}]})
        (event,) = compile_plan(scenario).schedule()
        assert event.kind == "equivocate"
        assert event.target == ("n2", 80_000)

    def test_corrupt_state_event_carries_node(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "corrupt-state": "n1"}]})
        (event,) = compile_plan(scenario).schedule()
        assert event.kind == "corrupt-state"
        assert event.target == ("n1",)

    def test_reconfig_example_compiles_to_expected_kinds(self):
        scenario = load_scenario(RECONFIG_EXAMPLE)
        plan = compile_plan(scenario)
        assert [e.kind for e in plan.schedule()] == [
            "drop", "drain", "join", "crash", "join", "drain"]

    def test_drain_event_carries_node(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "drain": "n2"}]})
        (event,) = compile_plan(scenario).schedule()
        assert event.kind == "drain"
        assert event.target == ("n2",)

    def test_join_event_carries_node(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "join": "n2"}]})
        (event,) = compile_plan(scenario).schedule()
        assert event.kind == "join"
        assert event.target == ("n2",)

    def test_auth_defaults_off(self):
        scenario = scenario_from_dict({
            "events": [{"at": 1.0, "crash": "n0"}]})
        assert scenario.auth is False

    def test_json_scenario_loads(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "name": "from-json", "nodes": 2, "duration": 1.0,
            "events": [{"at": 0.5, "crash": "n0"}]}))
        scenario = load_scenario(path)
        assert scenario.name == "from-json"
        assert compile_plan(scenario).schedule()[0].kind == "crash"


class TestReproducibilityPin:
    def test_example_schedule_hash_is_pinned(self):
        plan = compile_plan(load_scenario(EXAMPLE))
        assert plan.schedule_hash() == EXAMPLE_SCHEDULE_HASH

    def test_recompilation_is_byte_identical(self):
        first = compile_plan(load_scenario(EXAMPLE))
        second = compile_plan(load_scenario(EXAMPLE))
        assert ([e.canonical() for e in first.schedule()]
                == [e.canonical() for e in second.schedule()])
        assert first.schedule_hash() == second.schedule_hash()

    def test_json_equivalent_hashes_identically(self, tmp_path):
        scenario = load_scenario(EXAMPLE)
        path = tmp_path / "same.json"
        path.write_text(json.dumps({
            "name": scenario.name,
            "nodes": scenario.n_nodes,
            "duration": scenario.duration_s,
            "clients": scenario.clients,
            "events": scenario.events,
        }))
        assert (compile_plan(load_scenario(path)).schedule_hash()
                == EXAMPLE_SCHEDULE_HASH)

    def test_byzantine_schedule_hash_is_pinned(self):
        plan = compile_plan(load_scenario(BYZANTINE_EXAMPLE))
        assert plan.schedule_hash() == BYZANTINE_SCHEDULE_HASH

    def test_reconfig_schedule_hash_is_pinned(self):
        plan = compile_plan(load_scenario(RECONFIG_EXAMPLE))
        assert plan.schedule_hash() == RECONFIG_SCHEDULE_HASH

    def test_byzantine_kinds_hash_canonically(self):
        # The generic FaultEvent.canonical() must keep covering the new
        # kinds: a changed magnitude or target must change the digest,
        # and identical schedules must collide.
        base = ChaosScenario("t", ["n0", "n1"], 1.0, events=[
            {"at": 1.0, "lie": "n1", "bias": 50_000}])
        same = ChaosScenario("t", ["n0", "n1"], 1.0, events=[
            {"at": 1.0, "lie": "n1", "bias": 50_000}])
        rebias = ChaosScenario("t", ["n0", "n1"], 1.0, events=[
            {"at": 1.0, "lie": "n1", "bias": 50_001}])
        renode = ChaosScenario("t", ["n0", "n1"], 1.0, events=[
            {"at": 1.0, "lie": "n0", "bias": 50_000}])
        rekind = ChaosScenario("t", ["n0", "n1"], 1.0, events=[
            {"at": 1.0, "equivocate": "n1", "spread": 50_000}])
        digest = lambda s: compile_plan(s).schedule_hash()  # noqa: E731
        assert digest(base) == digest(same)
        assert len({digest(s)
                    for s in (base, rebias, renode, rekind)}) == 4

    def test_hash_sees_every_event_change(self):
        base = ChaosScenario("t", ["n0", "n1"], 1.0,
                             events=[{"at": 1.0, "drop": 0.05}])
        moved = ChaosScenario("t", ["n0", "n1"], 1.0,
                              events=[{"at": 1.5, "drop": 0.05}])
        retuned = ChaosScenario("t", ["n0", "n1"], 1.0,
                                events=[{"at": 1.0, "drop": 0.06}])
        hashes = {compile_plan(s).schedule_hash()
                  for s in (base, moved, retuned)}
        assert len(hashes) == 3
