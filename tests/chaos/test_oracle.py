"""InvariantOracle: each invariant class flags exactly when violated."""

from repro import trace
from repro.chaos.oracle import InvariantOracle


def checks(oracle):
    return [v.check for v in oracle.violations]


class TestMonotonicity:
    def test_increasing_values_pass(self):
        oracle = InvariantOracle()
        for i, value in enumerate([100, 200, 300]):
            oracle.observe_reply("c0", value, wall_s=i * 1e-4)
        assert oracle.ok
        assert oracle.replies_checked == 3

    def test_rollback_flagged(self):
        oracle = InvariantOracle()
        oracle.observe_reply("c0", 200, wall_s=0.0)
        oracle.observe_reply("c0", 150, wall_s=0.001)
        assert checks(oracle) == ["monotonicity"]
        assert oracle.violations[0].subject == "c0"

    def test_repeat_flagged(self):
        oracle = InvariantOracle()
        oracle.observe_reply("c0", 200, wall_s=0.0)
        oracle.observe_reply("c0", 200, wall_s=0.001)
        assert checks(oracle) == ["monotonicity"]

    def test_clients_are_independent(self):
        oracle = InvariantOracle()
        oracle.observe_reply("c0", 200, wall_s=0.0)
        oracle.observe_reply("c1", 100, wall_s=0.001)  # lower, other client
        assert oracle.ok


class TestStaleness:
    def test_wall_rate_advance_passes(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        # 50 ms later the value advanced ~50 ms: inside every slack term.
        oracle.observe_reply("c0", 1_050_500, wall_s=10.05, rtt_s=0.001)
        assert oracle.ok

    def test_value_jumping_ahead_of_wall_flagged(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0)
        # 10 ms of wall time, 5 s of value time: far past any slack.
        oracle.observe_reply("c0", 6_000_000, wall_s=10.01)
        assert checks(oracle) == ["staleness"]

    def test_value_stalling_behind_wall_flagged(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0)
        # 10 s of wall time, 1 us of value time: the clock stalled.
        oracle.observe_reply("c0", 1_000_001, wall_s=20.0)
        assert checks(oracle) == ["staleness"]

    def test_catchup_to_known_mapping_is_allowed(self):
        # Membership churn freezes rounds: served values drift behind
        # wall a little per call (inside the rtt slack), then the first
        # post-reformation round snaps time back to the mapping the
        # healthy phase established.  The snap is catch-up, not a
        # violation.
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.005)
        wall, value = 10.0, 1_000_000
        for _ in range(10):  # lagging phase: 8 ms of value per 20 ms
            wall += 0.020
            value += 8_000
            oracle.observe_reply("c0", value, wall_s=wall, rtt_s=0.005)
        assert oracle.ok, oracle.violations
        wall += 0.020  # snap: the accumulated 120 ms lag is repaid
        oracle.observe_reply("c0", value + 140_000, wall_s=wall,
                             rtt_s=0.005)
        assert oracle.ok, oracle.violations
        assert oracle.catchups_allowed == 1

    def test_transient_lag_repaid_is_tolerated(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        oracle.observe_reply("c0", 1_050_000, wall_s=10.05, rtt_s=0.001)
        # Reconfiguration stall: 1 ms of value over 100 ms of wall —
        # staleness debt, tolerated while it stays shallow.
        oracle.observe_reply("c0", 1_051_000, wall_s=10.15, rtt_s=0.001)
        assert oracle.ok, oracle.violations
        assert oracle.stalls_tolerated == 1
        # The post-reformation snap repays the debt.
        oracle.observe_reply("c0", 1_201_000, wall_s=10.20, rtt_s=0.001)
        oracle.finish()
        assert oracle.ok, oracle.violations
        assert oracle.catchups_allowed == 1

    def test_unrepaid_lag_flags_at_finish(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        oracle.observe_reply("c0", 1_050_000, wall_s=10.05, rtt_s=0.001)
        oracle.observe_reply("c0", 1_051_000, wall_s=10.15, rtt_s=0.001)
        oracle.finish()  # run ends with the clock still lagging
        assert checks(oracle) == ["staleness"]
        assert "never caught back up" in oracle.violations[0].detail

    def test_noted_reconfig_forgives_unrepaid_lag(self):
        # A permanent drain legitimately shifts the value<->wall mapping
        # down (group time continues from the agreed value, it never
        # resnaps to wall), so with a reconfiguration on record the
        # finish() debt check must not flag.
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        oracle.observe_reply("c0", 1_050_000, wall_s=10.05, rtt_s=0.001)
        oracle.note_reconfig("n0")
        oracle.observe_reply("c0", 1_051_000, wall_s=10.15, rtt_s=0.001)
        oracle.finish()
        assert oracle.ok, oracle.violations
        assert oracle.reconfigs_noted == 1
        assert oracle.stalls_tolerated == 1

    def test_reconfig_overshoot_within_transient_bound_tolerated(self):
        # A restarted member's first round can re-anchor group time
        # *above* any mapping the shrunk ring ever served (it repays
        # stalls the others wrote off).  With a reconfig on record the
        # overshoot is tolerated up to the transient bound.
        oracle = InvariantOracle(staleness_budget_us=2_000,
                                 max_transient_lag_us=1_000_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        oracle.observe_reply("c0", 1_100_000, wall_s=10.1, rtt_s=0.001)
        oracle.note_reconfig("n1")
        oracle.observe_reply("c0", 1_600_000, wall_s=10.11, rtt_s=0.001)
        assert oracle.ok, oracle.violations
        assert oracle.overshoots_tolerated == 1
        # ...but a jump past the bound is still time from the future.
        oracle.observe_reply("c0", 9_000_000, wall_s=10.12, rtt_s=0.001)
        assert checks(oracle) == ["staleness"]

    def test_jump_beyond_known_mapping_still_flagged(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.001)
        oracle.observe_reply("c0", 1_100_000, wall_s=10.1, rtt_s=0.001)
        # This jump lands far *ahead* of any mapping ever observed —
        # never exempt, no matter what preceded it.
        oracle.observe_reply("c0", 2_000_000, wall_s=10.11, rtt_s=0.001)
        assert checks(oracle) == ["staleness"]

    def test_rtt_widens_the_slack(self):
        oracle = InvariantOracle(staleness_budget_us=2_000)
        oracle.observe_reply("c0", 1_000_000, wall_s=10.0, rtt_s=0.5)
        # The value runs 400 ms ahead of the 100 ms wall gap — fine when
        # both calls spent up to half a second in flight.
        oracle.observe_reply("c0", 1_500_000, wall_s=10.1, rtt_s=0.5)
        assert oracle.ok


class TestAgreement:
    def test_identical_commits_pass(self):
        oracle = InvariantOracle().attach()
        try:
            trace.emit("round.complete", "n0",
                       thread="t", round=1, group_us=500, offset_us=5)
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=500, offset_us=7)
        finally:
            oracle.detach()
        assert oracle.ok
        assert oracle.rounds_checked == 2

    def test_divergent_commit_flagged(self):
        oracle = InvariantOracle().attach()
        try:
            trace.emit("round.complete", "n0",
                       thread="t", round=1, group_us=500)
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=501)
        finally:
            oracle.detach()
        assert checks(oracle) == ["agreement"]
        assert oracle.violations[0].subject == "n1"

    def test_distinct_rounds_do_not_collide(self):
        oracle = InvariantOracle().attach()
        try:
            trace.emit("round.complete", "n0",
                       thread="t", round=1, group_us=500)
            trace.emit("round.complete", "n0",
                       thread="t", round=2, group_us=900)
            trace.emit("round.complete", "n0",
                       thread="u", round=1, group_us=777)
        finally:
            oracle.detach()
        assert oracle.ok

    def test_other_trace_kinds_ignored(self):
        oracle = InvariantOracle().attach()
        try:
            trace.emit("round.start", "n0", thread="t", round=1)
        finally:
            oracle.detach()
        assert oracle.rounds_checked == 0

    def test_node_violation_carries_recent_client_traces(self):
        # An agreement violation's subject is a node, which has no calls
        # of its own: the violation must still link the recent client
        # traffic so the timelines around the divergence can be pulled.
        oracle = InvariantOracle().attach()
        try:
            oracle.observe_reply("c0", 100, wall_s=0.0, trace_id="t-one")
            oracle.observe_reply("c1", 200, wall_s=0.0, trace_id="t-two")
            trace.emit("round.complete", "n0",
                       thread="t", round=1, group_us=500)
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=501)
        finally:
            oracle.detach()
        assert checks(oracle) == ["agreement"]
        assert oracle.violations[0].trace_ids == ["t-one", "t-two"]

    def test_client_traces_are_bounded(self):
        oracle = InvariantOracle()
        for i in range(30):
            oracle.observe_reply("c0", 100 * (i + 1), wall_s=i * 1e-4,
                                 trace_id=f"t{i}")
        oracle.observe_reply("c0", 50, wall_s=0.01, trace_id="t-last")
        (violation,) = oracle.violations
        assert len(violation.trace_ids) <= 16
        assert "t-last" in violation.trace_ids


class _FakeState:
    def __init__(self, history):
        self.history = history


class _FakeSource:
    def __init__(self, history):
        self.clock_state = _FakeState(history)


class _FakeReplica:
    def __init__(self, history):
        self.time_source = _FakeSource(history)


class _FakeBed:
    """Just enough testbed for finish(): services + replicas()."""

    def __init__(self, replicas):
        self.services = {"svc": object()}
        self._replicas = replicas

    def replicas(self, group):
        return self._replicas


class TestFinish:
    def test_exact_offsets_pass(self):
        bed = _FakeBed({"n0": _FakeReplica([(1_000, 400, 600),
                                            (2_000, 1_100, 900)])})
        oracle = InvariantOracle()
        oracle.finish(bed, group="svc")
        assert oracle.ok

    def test_broken_offset_identity_flagged(self):
        bed = _FakeBed({"n0": _FakeReplica([(1_000, 400, 601)])})
        oracle = InvariantOracle()
        oracle.finish(bed, group="svc")
        assert checks(oracle) == ["offset"]
        assert oracle.violations[0].subject == "n0"

    def test_recovered_node_without_new_rounds_flagged(self):
        oracle = InvariantOracle().attach()
        try:
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=500)
            oracle.note_recovery("n1")
        finally:
            pass
        oracle.finish()  # detaches
        assert checks(oracle) == ["recovery"]

    def test_recovered_node_with_new_round_passes(self):
        oracle = InvariantOracle().attach()
        try:
            oracle.note_recovery("n1")
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=500)
        finally:
            pass
        oracle.finish()
        assert oracle.ok


class TestReport:
    def test_report_shape(self):
        oracle = InvariantOracle()
        oracle.observe_reply("c0", 10, wall_s=0.0)
        oracle.observe_reply("c0", 5, wall_s=0.001)
        report = oracle.report()
        assert report["ok"] is False
        assert report["replies_checked"] == 2
        assert report["clients"] == 1
        assert report["violations"][0]["check"] == "monotonicity"
        # Violations are JSON-able (transcripts are repr'd strings).
        assert all(isinstance(entry, str)
                   for entry in report["violations"][0]["transcript"])
