"""ChaosTransport: seeded impairment decisions over a fake transport.

These tests drive the decorator against an in-memory double of the
transport contract (no sockets, no kernel thread), so every decision —
drop, delay, duplicate, partition, isolation, rule specificity — is
checked deterministically.
"""

import pytest

from repro.chaos.transport import ChaosTransport
from repro.errors import NetworkError


class FakeKernel:
    """Records scheduled callbacks; fires them on demand."""

    def __init__(self):
        self.scheduled = []

    def schedule(self, delay, fn, *args):
        self.scheduled.append((delay, fn, args))

    def run_due(self):
        pending, self.scheduled = self.scheduled, []
        for _delay, fn, args in pending:
            fn(*args)


class FakePort:
    """Inner port double: records deliveries instead of sending."""

    def __init__(self, transport, node_id):
        self.transport = transport
        self.node_id = node_id
        self.up = True
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0

    def unicast(self, dst, payload, size_bytes=128):
        if not self.up:
            raise NetworkError(f"{self.node_id} down")
        self.frames_sent += 1
        self.transport.delivered.append((self.node_id, dst, payload))

    def multicast(self, payload, size_bytes=128):  # pragma: no cover
        raise AssertionError("chaos fans multicast out as unicasts")

    def sendto(self, addr, payload):
        self.transport.direct.append((self.node_id, addr, payload))

    @property
    def address(self):
        return ("127.0.0.1", 0)


class FakeTransport:
    """Inner transport double backing the decorator."""

    def __init__(self):
        self.ports = {}
        self.delivered = []   # (src, dst, payload)
        self.direct = []      # (src, addr, payload) via sendto
        self.closed = False

    def attach(self, node_id, deliver):
        port = FakePort(self, node_id)
        self.ports[node_id] = port
        return port

    def detach(self, node_id):
        self.ports.pop(node_id, None)

    def close(self):
        self.closed = True


def make_chaos(seed=7, nodes=("n0", "n1", "n2")):
    inner = FakeTransport()
    kernel = FakeKernel()
    chaos = ChaosTransport(inner, kernel, seed=seed)
    ports = {n: chaos.attach(n, lambda frame: None) for n in nodes}
    return chaos, inner, kernel, ports


class TestPassThrough:
    def test_quiet_wire_delivers_everything(self):
        chaos, inner, kernel, ports = make_chaos()
        for i in range(20):
            ports["n0"].unicast("n1", f"m{i}")
        assert len(inner.delivered) == 20
        assert kernel.scheduled == []
        assert chaos.frames_dropped == 0

    def test_multicast_fans_out_per_peer(self):
        chaos, inner, kernel, ports = make_chaos()
        ports["n0"].multicast("hello")
        # One leg per attached peer, self included (loopback).
        assert sorted(dst for _s, dst, _p in inner.delivered) == ["n0", "n1", "n2"]

    def test_up_is_delegated_to_inner_port(self):
        chaos, inner, kernel, ports = make_chaos()
        ports["n0"].up = False
        assert inner.ports["n0"].up is False
        with pytest.raises(NetworkError):
            ports["n0"].unicast("n1", "m")
        ports["n0"].up = True
        ports["n0"].unicast("n1", "m")
        assert len(inner.delivered) == 1

    def test_sendto_is_never_impaired(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)
        ports["n0"].sendto(("127.0.0.1", 9), "reply")
        assert inner.direct == [("n0", ("127.0.0.1", 9), "reply")]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        outcomes = []
        for _run in range(2):
            chaos, inner, kernel, ports = make_chaos(seed=42)
            chaos.set_drop(0.5)
            for i in range(200):
                ports["n0"].unicast("n1", i)
            outcomes.append([p for _s, _d, p in inner.delivered])
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 200  # the rate actually bites

    def test_different_seeds_diverge(self):
        outcomes = []
        for seed in (1, 2):
            chaos, inner, kernel, ports = make_chaos(seed=seed)
            chaos.set_drop(0.5)
            for i in range(200):
                ports["n0"].unicast("n1", i)
            outcomes.append([p for _s, _d, p in inner.delivered])
        assert outcomes[0] != outcomes[1]

    def test_pairs_draw_independent_streams(self):
        # Traffic on one pair must not perturb another pair's stream.
        chaos, inner, kernel, ports = make_chaos(seed=9)
        chaos.set_drop(0.5)
        for i in range(100):
            ports["n0"].unicast("n1", i)
        solo = [p for _s, d, p in inner.delivered if d == "n1"]

        chaos2, inner2, kernel2, ports2 = make_chaos(seed=9)
        chaos2.set_drop(0.5)
        for i in range(100):
            ports2["n0"].unicast("n1", i)
            ports2["n0"].unicast("n2", i)  # interleaved extra traffic
        mixed = [p for _s, d, p in inner2.delivered if d == "n1"]
        assert solo == mixed


class TestTopology:
    def test_partition_blocks_across_components(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.partition({"n0", "n1"}, {"n2"})
        ports["n0"].unicast("n1", "intra")
        ports["n0"].unicast("n2", "cross")
        assert [(s, d) for s, d, _p in inner.delivered] == [("n0", "n1")]
        assert chaos.frames_blocked == 1
        assert not chaos.reachable("n0", "n2")
        assert chaos.reachable("n2", "n2")  # self-delivery survives

    def test_isolate_cuts_both_directions(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.isolate("n2")
        ports["n0"].unicast("n2", "in")
        ports["n2"].unicast("n0", "out")
        assert inner.delivered == []
        assert chaos.frames_blocked == 2

    def test_heal_restores_but_keeps_rules(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)
        chaos.partition({"n0"}, {"n1", "n2"})
        chaos.heal()
        assert chaos.reachable("n0", "n1")
        ports["n0"].unicast("n1", "m")
        assert inner.delivered == []  # the drop rule survived the heal
        assert chaos.frames_dropped == 1

    def test_clear_resets_everything(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)
        chaos.isolate("n1")
        chaos.clear()
        ports["n0"].unicast("n1", "m")
        assert len(inner.delivered) == 1


class TestImpairments:
    def test_drop_rate_one_loses_everything(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)
        for i in range(10):
            ports["n0"].unicast("n1", i)
        assert inner.delivered == []
        assert chaos.frames_dropped == 10

    def test_delay_holds_frames_on_the_kernel(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_delay(0.05)
        ports["n0"].unicast("n1", "late")
        assert inner.delivered == []
        assert len(kernel.scheduled) == 1
        assert kernel.scheduled[0][0] >= 0.05
        kernel.run_due()
        assert [p for _s, _d, p in inner.delivered] == ["late"]
        assert chaos.frames_delayed == 1

    def test_delayed_frame_dies_with_crashed_sender(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_delay(0.05)
        ports["n0"].unicast("n1", "doomed")
        ports["n0"].up = False  # crash while the frame is "in flight"
        kernel.run_due()        # must neither deliver nor raise
        assert inner.delivered == []

    def test_duplicate_rate_one_sends_two_copies(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_duplicate(1.0)
        ports["n0"].unicast("n1", "twice")
        kernel.run_due()  # the extra copy is slightly delayed
        assert [p for _s, _d, p in inner.delivered] == ["twice", "twice"]
        assert chaos.frames_duplicated == 1

    def test_self_delivery_is_never_impaired(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)
        chaos.set_delay(1.0)
        assert chaos.decide("n0", "n0") == [0.0]

    def test_specific_pair_rule_overrides_wildcard(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(1.0)                      # (ANY, ANY)
        chaos.set_drop(0.0, src="n0", dst="n1")  # exact pair wins
        ports["n0"].unicast("n1", "spared")
        ports["n0"].unicast("n2", "lost")
        assert [p for _s, _d, p in inner.delivered] == ["spared"]

    def test_src_wildcard_beats_dst_wildcard(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_drop(0.0, src="n0")   # (src, ANY)
        chaos.set_drop(1.0, dst="n1")   # (ANY, dst) — lower precedence
        ports["n0"].unicast("n1", "kept")
        assert [p for _s, _d, p in inner.delivered] == ["kept"]

    def test_reorder_holds_selected_frames(self):
        chaos, inner, kernel, ports = make_chaos()
        chaos.set_reorder(1.0, window_s=0.02)
        ports["n0"].unicast("n1", "a")
        assert inner.delivered == []  # held back on the kernel
        assert len(kernel.scheduled) == 1
        assert 0.0 < kernel.scheduled[0][0] <= 0.02
