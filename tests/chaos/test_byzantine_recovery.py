"""Self-stabilizing recovery: scrambled replica state must be repaired
within a bounded number of rounds.

``corrupt_time_state`` models a transient fault hitting exactly the
state the stabilization path claims to repair (clock offset, round
counters, duplicate-detection watermarks, the fast-path floor).  The
documented guarantee — see docs/algorithm.md — is that a corrupted
replica repairs its state within ``ROUND_BOUND`` completed rounds of
live traffic, and its commits never diverge from the correct replicas'
in the meantime.  These tests pin that bound; the oracle-window tests
below pin the matching exclusion semantics of
``InvariantOracle.note_corruption``.
"""

from collections import defaultdict

from repro import trace
from repro.chaos.oracle import InvariantOracle
from repro.errors import RpcTimeout

from support import ClockApp, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)

#: The documented self-stabilization bound: a corrupted replica must
#: have repaired its state within this many completed rounds.  Changing
#: it is an API change — update docs/algorithm.md and the oracle's
#: default ``round_bound`` together.
ROUND_BOUND = 2

REPLICAS = ["n1", "n2", "n3", "n4"]


def build_bed(seed):
    bed = make_testbed(seed=seed, num_nodes=5, epoch_spread_s=30.0)
    bed.deploy("svc", ClockApp, REPLICAS, style="active",
               time_source="cts", byzantine=True)
    client = bed.client("n0")
    bed.start(settle=0.3)

    def call_some(n):
        def scenario():
            values = []
            attempts = 0
            while len(values) < n and attempts < n * 4:
                attempts += 1
                try:
                    result, _ = yield from client.timed_call(
                        "svc", "get_time", timeout=0.5)
                except RpcTimeout:
                    continue
                if result.ok:
                    values.append(result.value)
            return values

        return bed.run_process(scenario())

    return bed, call_some


class TestReconvergence:
    def test_state_repaired_within_round_bound(self):
        bed, call_some = build_bed(seed=11)
        with trace.TRACER.capture(["round.complete", "state.repaired"]) as events:
            values = call_some(5)
            mark = len(events)
            details = bed.corrupt_state("n2", seed=42)
            values += call_some(12)
            bed.run(0.2)

        # The scrambler actually hit the replica (seeded, so this is
        # stable across runs).
        assert details["svc"]["offset_bump_us"] > 0
        assert details["svc"]["round_bump"] > 0

        post = events[mark:]
        repairs = [i for i, e in enumerate(post)
                   if e.kind == "state.repaired" and e.node == "n2"]
        assert repairs, "no stabilization event after corruption"
        # Every repair landed within ROUND_BOUND completed rounds of the
        # corruption — the pinned reconvergence bound.
        rounds_before_last_repair = sum(
            1 for e in post[:repairs[-1]]
            if e.kind == "round.complete" and e.node == "n2")
        assert rounds_before_last_repair <= ROUND_BOUND

        # The corrupted replica kept making progress afterwards...
        rounds_after = sum(1 for e in post
                           if e.kind == "round.complete" and e.node == "n2")
        assert rounds_after > ROUND_BOUND
        # ...its commits never diverged from the correct replicas'...
        commits = defaultdict(dict)
        for e in post:
            if e.kind == "round.complete":
                key = (e.fields["thread"], e.fields["round"])
                commits[key][e.node] = e.fields["group_us"]
        divergent = [k for k, per_node in commits.items()
                     if len(set(per_node.values())) > 1]
        assert divergent == []
        # ...and the client never saw the corruption.
        assert len(values) >= 15
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_stabilization_counters_account_for_repairs(self):
        bed, call_some = build_bed(seed=11)
        call_some(5)
        bed.corrupt_state("n2", seed=42)
        call_some(12)
        bed.run(0.2)
        service = bed.replicas("svc")["n2"].time_source
        # Watermark, round-counter and floor repairs each tick the
        # counter; at least one of them must have fired.
        assert service.stats.stabilizations >= 1
        untouched = bed.replicas("svc")["n3"].time_source
        assert untouched.stats.stabilizations == 0

    def test_corruption_is_seeded_and_reproducible(self):
        bed_a, call_a = build_bed(seed=11)
        call_a(3)
        details_a = bed_a.corrupt_state("n2", seed=99)
        bed_b, call_b = build_bed(seed=11)
        call_b(3)
        details_b = bed_b.corrupt_state("n2", seed=99)
        assert details_a == details_b


class TestOracleCorruptionWindow:
    """``note_corruption`` opens a repair window of exactly
    ``round_bound`` rounds: divergence inside is excluded, divergence
    after is flagged, and a replica that never resumes completing rounds
    is flagged as failing to stabilize."""

    def test_divergence_inside_window_excluded(self):
        oracle = InvariantOracle().attach()
        try:
            oracle.note_corruption("n1", round_bound=ROUND_BOUND)
            for rnd in (1, 2):  # rounds 1..ROUND_BOUND: still repairing
                trace.emit("round.complete", "n0",
                           thread="t", round=rnd, group_us=500 * rnd)
                trace.emit("round.complete", "n1",
                           thread="t", round=rnd, group_us=500 * rnd + 7)
        finally:
            oracle.detach()
        assert oracle.ok

    def test_divergence_after_window_flagged(self):
        oracle = InvariantOracle().attach()
        try:
            oracle.note_corruption("n1", round_bound=ROUND_BOUND)
            for rnd in (1, 2, 3):  # round 3 is past the window
                trace.emit("round.complete", "n0",
                           thread="t", round=rnd, group_us=500 * rnd)
                trace.emit("round.complete", "n1",
                           thread="t", round=rnd, group_us=500 * rnd + 7)
        finally:
            oracle.detach()
        assert [v.check for v in oracle.violations] == ["agreement"]
        assert oracle.violations[0].subject == "n1"

    def test_agreement_after_window_passes_when_converged(self):
        oracle = InvariantOracle().attach()
        try:
            oracle.note_corruption("n1", round_bound=ROUND_BOUND)
            trace.emit("round.complete", "n1",
                       thread="t", round=1, group_us=999_999)  # repairing
            for rnd in (2, 3, 4):
                trace.emit("round.complete", "n0",
                           thread="t", round=rnd, group_us=500 * rnd)
                trace.emit("round.complete", "n1",
                           thread="t", round=rnd, group_us=500 * rnd)
        finally:
            oracle.detach()
        assert oracle.ok

    def test_never_reconverging_replica_flagged_at_finish(self):
        oracle = InvariantOracle().attach()
        try:
            oracle.note_corruption("n1", round_bound=ROUND_BOUND)
            # n1 completes only ROUND_BOUND rounds after corruption: it
            # never provably re-entered agreement.
            for rnd in (1, 2):
                trace.emit("round.complete", "n1",
                           thread="t", round=rnd, group_us=500 * rnd)
        finally:
            pass
        oracle.finish()  # detaches
        assert "stabilization" in [v.check for v in oracle.violations]

    def test_report_lists_corrupted_nodes(self):
        oracle = InvariantOracle()
        oracle.note_corruption("n2", round_bound=ROUND_BOUND)
        assert oracle.report()["corrupted"] == ["n2"]
