"""End-to-end chaos harness: a short seeded scenario over real sockets.

A trimmed cousin of ``examples/chaos_partition.yaml`` — loss, an
isolation window, a crash/recover cycle — driven through
:func:`repro.chaos.runner.run_chaos` exactly as the CLI does.  The
verdict must come back clean: every fault injected, replies observed,
zero invariant violations.
"""

import pytest

from repro.chaos import ChaosScenario, compile_plan, run_chaos
from repro.obs.crossnode import shard_path

pytestmark = pytest.mark.live


def short_scenario():
    return ChaosScenario(
        name="smoke",
        node_ids=["n0", "n1", "n2"],
        duration_s=5.0,
        clients=1,
        events=[
            {"at": 0.5, "drop": 0.05},
            {"at": 1.5, "partition": [["n0", "n1"], ["n2"]]},
            {"at": 2.5, "heal": True},
            {"at": 3.0, "crash": "n2"},
            {"at": 4.0, "recover": "n2"},
        ],
    )


class TestRunChaos:
    def test_verdict_is_clean_and_reproducible(self):
        scenario = short_scenario()
        verdict = run_chaos(scenario, seed=3)

        assert verdict["ok"], verdict["oracle"]["violations"]
        assert verdict["faults_injected"] == 5
        assert verdict["faults_pending"] == 0
        # The schedule in the verdict is the compiled plan, byte for byte.
        assert verdict["schedule_hash"] == compile_plan(scenario).schedule_hash()
        # The wire actually hurt: seeded loss plus the partition window.
        assert verdict["chaos"]["frames_dropped"] > 0
        assert verdict["chaos"]["frames_blocked"] > 0
        # Clients kept making progress and the oracle watched them do it.
        oracle = verdict["oracle"]
        assert oracle["ok"] is True
        assert oracle["violations"] == []
        assert oracle["replies_checked"] > 0
        assert oracle["rounds_checked"] > 0
        clients = verdict["clients"]
        assert clients["calls"] > 0
        assert clients["error_rate"] <= 0.25
        # Every client call went through a gateway exactly once.
        assert verdict["gateway"]["requests_injected"] > 0
        # No artifacts directory: no trace section, no tracing overhead.
        assert "trace" not in verdict

    def test_artifacts_dir_yields_assembled_timelines(self, tmp_path):
        scenario = ChaosScenario(
            name="traced", node_ids=["n0", "n1", "n2"],
            duration_s=2.0, clients=1,
            events=[{"at": 0.5, "drop": 0.02}])
        verdict = run_chaos(scenario, seed=11,
                            artifacts_dir=str(tmp_path))

        assert verdict["ok"], verdict["oracle"]["violations"]
        # Per-node shards were written: every daemon node plus the client.
        for node in ("n0", "n1", "n2", "chaos0"):
            assert shard_path(tmp_path, node).exists(), node
        trace_section = verdict["trace"]
        assert trace_section["shard_dir"] == str(tmp_path)
        assert trace_section["records"] > 0
        assert trace_section["timelines"] > 0
        # The acceptance criterion: at least one end-to-end timeline
        # (client send -> gateway -> execute -> round won -> served ->
        # reply received) was stitched from the per-node shards.
        assert trace_section["complete"] >= 1
        example = trace_section["example"]
        assert example["complete"] is True
        stages = {hop["stage"] for hop in example["hops"]}
        assert {"client.send", "gateway.inject", "served",
                "round.won", "reply.recv"} <= stages
        # A clean run dumps nothing, but the key is always present.
        assert verdict["flight_dumps"] == []
