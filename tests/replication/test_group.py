"""Tests for the group layer: views, joins, sync, membership pruning."""

import pytest

from repro.replication import MsgType, make_envelope
from repro.totem import TotemConfig, TotemProcessor
from repro.replication.group import GroupRuntime
from repro.sim import Cluster, ClusterConfig


@pytest.fixture
def stack():
    cluster = Cluster(ClusterConfig(num_nodes=4), seed=0)
    static = cluster.node_ids
    runtimes = {}
    for node_id in static:
        proc = TotemProcessor(
            cluster.node(node_id), TotemConfig(), static_membership=static
        )
        runtimes[node_id] = GroupRuntime(proc)
        proc.start()
    cluster.sim.run(until=0.1)
    return cluster, runtimes


def run(cluster, duration):
    cluster.sim.run(until=cluster.sim.now + duration)


class TestViews:
    def test_join_order_defines_view(self, stack):
        cluster, runtimes = stack
        for node_id in ["n2", "n1", "n3"]:
            runtimes[node_id].endpoint("grp").join()
            run(cluster, 0.01)
        for node_id in ["n1", "n2", "n3"]:
            view = runtimes[node_id].endpoint("grp").view
            assert view.members == ("n2", "n1", "n3")
            assert view.primary == "n2"

    def test_all_nodes_track_views_even_without_endpoint(self, stack):
        cluster, runtimes = stack
        runtimes["n1"].endpoint("grp").join()
        run(cluster, 0.05)
        # n0 never joined but creates the endpoint later: view is current.
        view = runtimes["n0"].endpoint("grp").view
        assert view.members == ("n1",)

    def test_is_primary_flag(self, stack):
        cluster, runtimes = stack
        runtimes["n1"].endpoint("grp").join()
        runtimes["n2"].endpoint("grp").join()
        run(cluster, 0.05)
        assert runtimes["n1"].endpoint("grp").is_primary
        assert not runtimes["n2"].endpoint("grp").is_primary

    def test_leave_updates_view(self, stack):
        cluster, runtimes = stack
        runtimes["n1"].endpoint("grp").join()
        runtimes["n2"].endpoint("grp").join()
        run(cluster, 0.05)
        runtimes["n1"].endpoint("grp").leave()
        run(cluster, 0.05)
        assert runtimes["n2"].endpoint("grp").view.members == ("n2",)
        assert runtimes["n2"].endpoint("grp").is_primary

    def test_view_change_callbacks_fire(self, stack):
        cluster, runtimes = stack
        views = []
        endpoint = runtimes["n1"].endpoint("grp")
        endpoint.on_view_change = views.append
        endpoint.join()
        run(cluster, 0.05)
        runtimes["n2"].endpoint("grp").join()
        run(cluster, 0.05)
        assert [v.members for v in views] == [("n1",), ("n1", "n2")]

    def test_crash_prunes_member_from_view(self, stack):
        cluster, runtimes = stack
        for node_id in ["n1", "n2", "n3"]:
            runtimes[node_id].endpoint("grp").join()
            run(cluster, 0.01)  # serialize joins into the total order
        run(cluster, 0.05)
        cluster.node("n1").crash()
        run(cluster, 0.3)
        view = runtimes["n2"].endpoint("grp").view
        assert view.members == ("n2", "n3")
        assert runtimes["n2"].endpoint("grp").is_primary


class TestMessaging:
    def test_messages_routed_by_destination_group(self, stack):
        cluster, runtimes = stack
        received = {"grp": [], "other": []}
        for name in received:
            ep = runtimes["n2"].endpoint(name)
            ep.on_message = (
                lambda env, _name=name: received[_name].append(env.body)
            )
        runtimes["n1"].endpoint("grp").join()
        run(cluster, 0.05)
        runtimes["n1"].endpoint("grp").mcast(
            make_envelope(MsgType.APP, "grp", "grp", 0, 1, "n1", body="hello")
        )
        run(cluster, 0.05)
        assert received["grp"] == ["hello"]
        assert received["other"] == []

    def test_sender_receives_own_group_message(self, stack):
        cluster, runtimes = stack
        got = []
        ep = runtimes["n1"].endpoint("grp")
        ep.on_message = lambda env: got.append(env.body)
        ep.join()
        run(cluster, 0.05)
        ep.mcast(make_envelope(MsgType.APP, "grp", "grp", 0, 1, "n1", body="self"))
        run(cluster, 0.05)
        assert got == ["self"]

    def test_same_delivery_order_across_nodes(self, stack):
        cluster, runtimes = stack
        logs = {}
        for node_id in ["n1", "n2", "n3"]:
            ep = runtimes[node_id].endpoint("grp")
            logs[node_id] = []
            ep.on_message = (
                lambda env, nid=node_id: logs[nid].append(env.body)
            )
        runtimes["n1"].endpoint("grp").join()
        run(cluster, 0.05)
        for i in range(10):
            sender = ["n1", "n2", "n3"][i % 3]
            runtimes[sender].endpoint("grp").mcast(
                make_envelope(MsgType.APP, "grp", "grp", 0, i, sender, body=i)
            )
        run(cluster, 0.1)
        assert logs["n1"] == logs["n2"] == logs["n3"]
        assert sorted(logs["n1"]) == list(range(10))


class TestLateViewSync:
    def test_late_totem_joiner_converges_via_view_sync(self):
        """A node that joins the ring after group joins were delivered
        still converges to the correct member order."""
        cluster = Cluster(ClusterConfig(num_nodes=4), seed=1)
        static = cluster.node_ids
        procs, runtimes = {}, {}
        for node_id in static:
            procs[node_id] = TotemProcessor(
                cluster.node(node_id), TotemConfig(), static_membership=static
            )
            runtimes[node_id] = GroupRuntime(procs[node_id])
        for node_id in ["n0", "n1", "n2"]:
            procs[node_id].start()
        cluster.sim.run(until=0.1)
        runtimes["n2"].endpoint("grp").join()
        cluster.sim.run(until=0.15)
        runtimes["n1"].endpoint("grp").join()
        cluster.sim.run(until=0.2)
        # n3 boots late and hosts a fresh endpoint.
        procs["n3"].start()
        cluster.sim.run(until=0.5)
        runtimes["n3"].endpoint("grp").join()
        cluster.sim.run(until=0.8)
        view = runtimes["n3"].endpoint("grp").view
        assert view.members == ("n2", "n1", "n3")
        for node_id in ["n1", "n2"]:
            assert runtimes[node_id].endpoint("grp").view.members == view.members
