"""Unit tests for the fault-tolerant protocol envelope."""

from repro.replication import MessageHeader, MsgType, make_envelope


class TestMessageHeader:
    def test_message_id_fields(self):
        header = MessageHeader(MsgType.REQUEST, "cli", "srv", 3, 17)
        assert header.message_id == ("cli", "srv", 3, 17)

    def test_ccs_header_uses_same_group(self):
        env = make_envelope(MsgType.CCS, "grp", "grp", 0, 42, "n1")
        assert env.header.src_grp == env.header.dst_grp == "grp"
        # For a CCS message the msg_seq_num carries the round number.
        assert env.header.msg_seq_num == 42

    def test_wire_size_includes_body(self):
        small = make_envelope(MsgType.REQUEST, "a", "b", 1, 1, "n0")
        assert small.wire_size() > 40

    def test_envelope_is_frozen(self):
        env = make_envelope(MsgType.REPLY, "a", "b", 1, 1, "n0")
        try:
            env.sender = "other"
            assert False, "should be immutable"
        except AttributeError:
            pass
