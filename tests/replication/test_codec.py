"""Round-trip tests for the binary wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CCSMessage, GroupClockStamp
from repro.replication import MsgType, make_envelope
from repro.replication.codec import (
    CodecError,
    decode_envelope,
    encode_envelope,
    wire_length,
)
from repro.rpc import Invocation, Result

identifiers = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=32,
)
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=40),
)


def roundtrip(envelope):
    return decode_envelope(encode_envelope(envelope))


class TestRoundTrips:
    def test_ccs_envelope(self):
        env = make_envelope(
            MsgType.CCS, "grp", "grp", 0, 17, "n2",
            body=CCSMessage("0:main", 17, 1_234_567, 1, special=True),
        )
        assert roundtrip(env) == env

    def test_invocation_envelope(self):
        env = make_envelope(
            MsgType.REQUEST, "cli", "srv", 3, 9, "n0",
            body=Invocation("get_time", (1, "x", None)),
        )
        assert roundtrip(env) == env

    def test_result_envelope(self):
        env = make_envelope(
            MsgType.REPLY, "srv", "cli", 3, 9, "n1",
            body=Result(value={"sec": 5, "usec": 12}),
        )
        assert roundtrip(env) == env

    def test_error_result(self):
        env = make_envelope(
            MsgType.REPLY, "srv", "cli", 1, 1, "n1",
            body=Result(error="TypeError: nope"),
        )
        decoded = roundtrip(env)
        assert not decoded.body.ok
        assert decoded.body.error == "TypeError: nope"

    def test_stamp_envelope(self):
        env = make_envelope(
            MsgType.APP, "a", "b", 0, 0, "n3",
            body=GroupClockStamp("alpha", 987654321),
        )
        assert roundtrip(env) == env

    def test_none_body(self):
        env = make_envelope(MsgType.GROUP_JOIN, "g", "g", 0, 0, "n1")
        assert roundtrip(env) == env

    def test_json_body(self):
        env = make_envelope(
            MsgType.VIEW_SYNC, "g", "g", 0, 0, "n1",
            body=["n1", "n2", "n3"],
        )
        assert roundtrip(env) == env

    @settings(max_examples=80)
    @given(
        msg_type=st.sampled_from(list(MsgType)),
        src=identifiers,
        dst=identifiers,
        conn=st.integers(min_value=0, max_value=2**40),
        seq=st.integers(min_value=0, max_value=2**40),
        sender=identifiers,
        thread=identifiers,
        round_number=st.integers(min_value=0, max_value=2**40),
        micros=st.integers(min_value=0, max_value=2**60),
        call=st.integers(min_value=1, max_value=3),
    )
    def test_ccs_property_roundtrip(
        self, msg_type, src, dst, conn, seq, sender, thread,
        round_number, micros, call,
    ):
        env = make_envelope(
            msg_type, src, dst, conn, seq, sender,
            body=CCSMessage(thread, round_number, micros, call),
        )
        assert roundtrip(env) == env

    @settings(max_examples=60)
    @given(
        method=identifiers,
        args=st.lists(json_scalars, max_size=6),
    )
    def test_invocation_property_roundtrip(self, method, args):
        env = make_envelope(
            MsgType.REQUEST, "c", "s", 1, 1, "n0",
            body=Invocation(method, tuple(args)),
        )
        assert roundtrip(env) == env


class TestErrors:
    def test_unencodable_body_rejected(self):
        env = make_envelope(
            MsgType.APP, "g", "g", 0, 0, "n1", body=object()
        )
        with pytest.raises(CodecError, match="not wire-encodable"):
            encode_envelope(env)

    def test_malformed_buffer_rejected(self):
        with pytest.raises(CodecError, match="malformed"):
            decode_envelope(b"\x01\x02")

    def test_truncated_buffer_rejected(self):
        env = make_envelope(
            MsgType.CCS, "g", "g", 0, 1, "n1",
            body=CCSMessage("t", 1, 2, 3),
        )
        data = encode_envelope(env)
        with pytest.raises(CodecError):
            decode_envelope(data[: len(data) // 2])


class TestSizeEstimates:
    def test_estimates_in_right_ballpark(self):
        """The simulation's wire_size() estimates should be within a
        small factor of the real encoded size for typical messages."""
        samples = [
            make_envelope(
                MsgType.CCS, "timesvc", "timesvc", 0, 42, "n2",
                body=CCSMessage("0:main", 42, 5_851_170, 1),
            ),
            make_envelope(
                MsgType.REQUEST, "client.n0", "timesvc", 1, 7, "n0",
                body=Invocation("get_time", ()),
            ),
            make_envelope(
                MsgType.REPLY, "timesvc", "client.n0", 1, 7, "n1",
                body=Result(value=[5, 851170]),
            ),
        ]
        for env in samples:
            estimate = env.wire_size()
            actual = wire_length(env)
            assert 0.25 <= actual / estimate <= 4.0, (env, estimate, actual)
