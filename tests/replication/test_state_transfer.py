"""Tests for state transfer to joining and recovering replicas."""

import pytest

from support import CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestJoin:
    def test_joiner_adopts_current_state(self):
        bed = make_testbed(seed=20)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 5)
        joiner = bed.add_replica("svc", "n3", CounterApp, time_source="local")
        bed.run(0.5)
        assert joiner.state_transfer.ready
        assert joiner.app.count == 5
        assert joiner.request_index == bed.replicas("svc")["n1"].request_index

    def test_joiner_processes_subsequent_requests(self):
        bed = make_testbed(seed=21)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 3)
        joiner = bed.add_replica("svc", "n3", CounterApp, time_source="local")
        bed.run(0.5)
        call_n(bed, client, "svc", "increment", 2)
        bed.run(0.1)
        assert joiner.app.count == 5
        assert joiner.stats.requests_processed == 2

    def test_requests_during_transfer_are_not_lost_or_doubled(self):
        """Requests racing the state transfer are applied exactly once at
        the joiner (checkpoint covers pre-GET_STATE, replay the rest)."""
        bed = make_testbed(seed=22)
        bed.deploy("svc", CounterApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def burst():
            for i in range(20):
                result, _ = yield from client.timed_call("svc", "increment")
                assert result.ok
            return None

        # Launch the joiner mid-burst.
        proc = bed.sim.process(burst(), name="burst")
        bed.run(0.002)
        joiner = bed.add_replica("svc", "n3", CounterApp, time_source="local")
        while not proc.triggered:
            bed.run(0.01)
        bed.run(0.5)
        assert joiner.state_transfer.ready
        assert joiner.app.count == 20

    def test_crashed_replica_recovers_with_state(self):
        bed = make_testbed(seed=23)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 4)
        bed.crash("n3")
        bed.run(0.3)
        call_n(bed, client, "svc", "increment", 3)
        # Restart node n3 and re-add a fresh replica.
        bed.recover("n3")
        bed.run(0.5)  # let the node rejoin the ring
        recovered = bed.add_replica("svc", "n3", CounterApp, time_source="local")
        bed.run(1.0)
        assert recovered.state_transfer.ready
        assert recovered.app.count == 7
        call_n(bed, client, "svc", "increment", 1)
        bed.run(0.1)
        assert recovered.app.count == 8

    def test_passive_joiner_gets_log_tail(self):
        bed = make_testbed(seed=24)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2"],
            style="passive", time_source="local", checkpoint_interval=100,
        )
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 6)
        joiner = bed.add_replica(
            "svc", "n3", CounterApp,
            style="passive", time_source="local", checkpoint_interval=100,
        )
        bed.run(0.5)
        assert joiner.state_transfer.ready
        # Primary crashes twice so the joiner eventually promotes.
        for nid in ["n1", "n2"]:
            if nid in bed.replicas("svc"):
                bed.crash(nid)
                bed.run(0.5)
        assert joiner.is_primary
        values = call_n(bed, client, "svc", "increment", 1)
        assert values == [7]


class TestFounders:
    def test_first_member_is_founder(self):
        bed = make_testbed(seed=25)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        bed.start()
        replica = bed.replicas("svc")["n1"]
        assert replica.state_transfer.ready

    def test_concurrent_cold_start_one_founder(self):
        bed = make_testbed(seed=26)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        bed.start(settle=0.5)
        ready = [r for r in bed.replicas("svc").values() if r.state_transfer.ready]
        assert len(ready) == 3  # everyone became ready (founder or transfer)
