"""Tests for the active / passive / semi-active replication styles."""

import pytest

from support import ClockApp, CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestActive:
    def test_every_replica_processes(self):
        bed = make_testbed(seed=1)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "increment", 5)
        assert values == [1, 2, 3, 4, 5]
        for replica in bed.replicas("svc").values():
            assert replica.app.count == 5
            assert replica.stats.requests_processed == 5

    def test_all_replicas_reply_first_wins(self):
        bed = make_testbed(seed=2)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 4)
        assert client.stats.replies_first == 4
        # The two losing replicas' replies arrive as duplicates.
        bed.run(0.05)
        assert client.stats.replies_duplicate == 8

    def test_service_survives_replica_crash(self):
        bed = make_testbed(seed=3)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 3)
        bed.crash("n2")
        bed.run(0.3)
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [4, 5]

    def test_unknown_method_returns_error(self):
        bed = make_testbed(seed=4)
        bed.deploy("svc", CounterApp, ["n1"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            result = yield client.call("svc", "no_such_method")
            return result

        result = bed.run_process(scenario())
        assert not result.ok
        assert "NoSuchMethod" in result.error

    def test_app_exception_propagates_as_error(self):
        class Exploding(CounterApp):
            def boom(self, ctx):
                yield ctx.compute(1e-6)
                raise ValueError("deterministic failure")

        bed = make_testbed(seed=5)
        bed.deploy("svc", Exploding, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()

        def scenario():
            result = yield client.call("svc", "boom")
            return result

        result = bed.run_process(scenario())
        assert not result.ok
        assert "ValueError" in result.error


class TestPassive:
    def test_only_primary_processes_and_replies(self):
        bed = make_testbed(seed=6)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="passive", time_source="local",
        )
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "increment", 6)
        assert values == [1, 2, 3, 4, 5, 6]
        bed.run(0.05)
        replicas = bed.replicas("svc")
        primary = next(r for r in replicas.values() if r.is_primary)
        backups = [r for r in replicas.values() if not r.is_primary]
        assert primary.stats.requests_processed == 6
        for backup in backups:
            assert backup.stats.requests_processed == 0
            assert backup.stats.requests_logged == 6
        assert client.stats.replies_duplicate == 0

    def test_checkpoints_truncate_backup_logs(self):
        bed = make_testbed(seed=7)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2"],
            style="passive", time_source="local", checkpoint_interval=5,
        )
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 10)
        bed.run(0.05)
        replicas = bed.replicas("svc")
        backup = next(r for r in replicas.values() if not r.is_primary)
        assert backup.stats.checkpoints_applied >= 2
        assert backup.app.count == 10  # checkpointed state caught up
        assert all(index > backup.processed_index for index, _ in backup.request_log)

    def test_failover_preserves_state_via_replay(self):
        bed = make_testbed(seed=8)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="passive", time_source="local", checkpoint_interval=4,
        )
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "increment", 7)
        assert values[-1] == 7
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        bed.crash(primary)
        bed.run(0.5)
        new_primary = next(r for r in bed.replicas("svc").values() if r.is_primary)
        assert new_primary.stats.promotions == 1
        values = call_n(bed, client, "svc", "increment", 3)
        # No lost or doubled increments: replay exactly bridged the gap.
        assert values == [8, 9, 10]

    def test_double_failover(self):
        bed = make_testbed(seed=9)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="passive", time_source="local", checkpoint_interval=3,
        )
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 5)
        for _ in range(2):
            primary = next(
                nid for nid, r in bed.replicas("svc").items() if r.is_primary
            )
            bed.crash(primary)
            bed.run(0.5)
        values = call_n(bed, client, "svc", "increment", 1)
        assert values == [6]


class TestSemiActive:
    def test_all_process_only_primary_replies(self):
        bed = make_testbed(seed=10)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="semi-active", time_source="local",
        )
        client = bed.client("n0")
        bed.start()
        values = call_n(bed, client, "svc", "increment", 5)
        assert values == [1, 2, 3, 4, 5]
        bed.run(0.05)
        for replica in bed.replicas("svc").values():
            assert replica.stats.requests_processed == 5
            assert replica.app.count == 5
        assert client.stats.replies_duplicate == 0

    def test_failover_is_hot(self):
        """Semi-active backups are hot: no replay needed on failover."""
        bed = make_testbed(seed=11)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="semi-active", time_source="local",
        )
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "increment", 4)
        primary = next(
            nid for nid, r in bed.replicas("svc").items() if r.is_primary
        )
        bed.crash(primary)
        bed.run(0.4)
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [5, 6]
