"""Group view reconvergence across partition and remerge."""

import pytest

from support import CounterApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestViewReconvergence:
    def test_views_identical_after_remerge(self):
        bed = make_testbed(seed=230)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        bed.start()
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        # Split views: majority dropped n3; n3 kept only itself.
        majority_view = bed.replicas("svc")["n1"].endpoint.view.members
        minority_view = bed.replicas("svc")["n3"].endpoint.view.members
        assert set(majority_view) == {"n1", "n2"}
        assert set(minority_view) == {"n3"}
        bed.cluster.network.heal()
        bed.run(1.5)
        views = {
            nid: r.endpoint.view.members
            for nid, r in bed.replicas("svc").items()
        }
        members_sets = {frozenset(v) for v in views.values()}
        assert members_sets == {frozenset({"n1", "n2", "n3"})}
        orders = set(views.values())
        assert len(orders) == 1, f"member order diverged: {views}"

    def test_primary_identical_after_remerge(self):
        bed = make_testbed(seed=231)
        bed.deploy(
            "svc", CounterApp, ["n1", "n2", "n3"],
            style="passive", time_source="local",
        )
        client = bed.client("n0")
        bed.start(settle=0.3)
        call_n(bed, client, "svc", "increment", 2)
        bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        bed.run(0.4)
        bed.cluster.network.heal()
        bed.run(1.5)
        primaries = {
            nid: r.endpoint.view.primary
            for nid, r in bed.replicas("svc").items()
        }
        assert len(set(primaries.values())) == 1, primaries
        # And the agreed primary still serves.
        values = call_n(bed, client, "svc", "increment", 2)
        assert values == [3, 4]

    def test_repeated_partition_cycles(self):
        bed = make_testbed(seed=232)
        bed.deploy("svc", CounterApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        total = 0
        for cycle in range(3):
            total += 2
            call_n(bed, client, "svc", "increment", 2)
            bed.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
            bed.run(0.4)
            bed.cluster.network.heal()
            bed.run(1.5)
        values = call_n(bed, client, "svc", "increment", 1)
        assert values == [total + 1]
        bed.run(0.3)
        counts = {nid: r.app.count for nid, r in bed.replicas("svc").items()}
        assert set(counts.values()) == {total + 1}, counts
