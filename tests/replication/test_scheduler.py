"""Unit tests for deterministic logical-thread management."""

import random

import pytest

from repro.errors import ReplicationError
from repro.sim import Network, Node, Simulator
from repro.replication.scheduler import ThreadManager


@pytest.fixture
def node():
    sim = Simulator()
    network = Network(sim, random.Random(0))
    return Node(sim, "n0", network, random.Random(1))


class TestThreadIds:
    def test_ids_embed_creation_order(self, node):
        manager = ThreadManager(node, "svc@n0")
        first = manager.create("main")
        second = manager.create("timer")
        assert first.thread_id == "0:main"
        assert second.thread_id == "1:timer"

    def test_same_creation_order_same_ids(self, node):
        a = ThreadManager(node, "a")
        b = ThreadManager(node, "b")
        for name in ("main", "timer", "janitor"):
            assert a.create(name).thread_id == b.create(name).thread_id

    def test_duplicate_id_rejected(self, node):
        manager = ThreadManager(node, "svc@n0")
        manager.create("main")
        # Same name at a different index is fine...
        manager.create("main")
        # ...but identical ids cannot happen through the public API;
        # forging one is rejected.
        manager._creation_order.pop()
        with pytest.raises(ReplicationError):
            manager.create("main")

    def test_thread_ids_listing(self, node):
        manager = ThreadManager(node, "svc@n0")
        manager.create("x")
        manager.create("y")
        assert manager.thread_ids == ["0:x", "1:y"]
        assert len(manager) == 2

    def test_get_by_id(self, node):
        manager = ThreadManager(node, "svc@n0")
        thread = manager.create("main")
        assert manager.get("0:main") is thread
        assert manager.get("9:ghost") is None


class TestThreadBodies:
    def test_factory_starts_process(self, node):
        manager = ThreadManager(node, "svc@n0")
        ran = []

        def body():
            yield node.sim.timeout(0.5)
            ran.append(node.sim.now)

        thread = manager.create("worker", lambda: body())
        assert thread.is_alive
        node.sim.run()
        assert ran == [0.5]
        assert not thread.is_alive

    def test_thread_without_body_is_placeholder(self, node):
        manager = ThreadManager(node, "svc@n0")
        thread = manager.create("reserved")
        assert thread.process is None
        assert not thread.is_alive

    def test_threads_die_with_node(self, node):
        manager = ThreadManager(node, "svc@n0")
        ran = []

        def body():
            yield node.sim.timeout(1.0)
            ran.append("survived")

        manager.create("worker", lambda: body())
        node.sim.run(until=0.5)
        node.crash()
        node.sim.run()
        assert ran == []
