"""Sharded loadgen: one small closed-loop run, reused across asserts.

The full 4-shard scaling measurement lives in CI's shard-smoke job (and
in ``BENCH_throughput.json``); here a 2-shard run with a short measure
window pins the machinery — routing spread, zipf identities, the
envelope, and the bench JSON shape — without the multi-minute sim.
"""

import json

import pytest

from repro.workloads import (
    record_shard_benchmark,
    run_loadgen_sharded,
    zipf_identities,
)


@pytest.fixture(scope="module")
def small_run():
    # Thinking workers: at 2 workers/shard a fully closed loop is
    # saturation with spiky round latency (see run_loadgen_sharded's
    # docstring); this test pins machinery, not capacity.
    return run_loadgen_sharded(
        shards=2, shard_size=3, concurrency=2,
        duration_s=0.2, warmup_s=1.0, seed=2, think_s=0.002)


class TestSmallShardedRun:
    def test_every_shard_serves_calls(self, small_run):
        assert small_run.completed > 0
        assert small_run.errors == 0
        assert sorted(small_run.per_shard_completed) == [0, 1]
        assert all(count > 0
                   for count in small_run.per_shard_completed.values())
        assert small_run.clients == 4  # shards * concurrency workers

    def test_oracle_and_envelope_are_populated(self, small_run):
        assert small_run.oracle_report is not None
        assert small_run.oracle_report["ok"], (
            small_run.oracle_report["violations"])
        assert small_run.skew_envelope["samples"] > 0
        assert small_run.summaries_sent > 0
        assert small_run.summaries_received > 0

    def test_sticky_routing_never_migrates(self, small_run):
        assert small_run.migrations == 0

    def test_result_dict_shape(self, small_run):
        doc = small_run.to_dict()
        assert doc["mode"] == "sharded"
        assert doc["shards"] == 2
        assert set(doc["per_shard"]) == {"0", "1"}
        assert doc["ops_per_s"] > 0
        assert doc["p50_us"] > 0
        assert doc["imbalance"] >= 1.0

    def test_bench_json_round_trip(self, small_run, tmp_path):
        path = tmp_path / "BENCH_throughput.json"
        record_shard_benchmark(path, small_run, small_run)
        record_shard_benchmark(path, small_run, small_run)  # appends
        doc = json.loads(path.read_text())
        assert doc["benchmark"] == "loadgen-throughput"
        assert len(doc["runs"]) == 2
        run = doc["runs"][-1]
        assert run["kind"] == "shard-scaling"
        assert run["scaling_vs_single_shard"] == 1.0
        assert run["skew_envelope"]["samples"] > 0
        assert run["modes"]["sharded"]["completed"] == small_run.completed


class TestZipfIdentities:
    def test_deterministic_for_a_seed(self):
        import random
        a = zipf_identities(100, universe=20, s=1.2,
                            rng=random.Random(7))
        b = zipf_identities(100, universe=20, s=1.2,
                            rng=random.Random(7))
        assert a == b
        assert len(a) == 100
        assert all(0 <= identity < 20 for identity in a)

    def test_skew_concentrates_on_low_ranks(self):
        import random
        from collections import Counter
        draws = Counter(zipf_identities(
            5_000, universe=50, s=1.5, rng=random.Random(3)))
        # Rank 0 must dominate the tail decisively under s=1.5.
        assert draws[0] > 5 * max(draws.get(rank, 0)
                                  for rank in range(25, 50))

    def test_s_zero_is_uniformish(self):
        import random
        from collections import Counter
        draws = Counter(zipf_identities(
            5_000, universe=10, s=0.0, rng=random.Random(1)))
        assert min(draws.values()) > 300  # fair share is 500
