"""Tests for the experiment workload generators (small sizes)."""

import pytest

from repro.workloads import (
    failover_comparison,
    run_failover_workload,
    run_latency_workload,
    run_recovery_workload,
    run_skew_drift_workload,
)


class TestLatencyWorkload:
    def test_collects_latencies(self):
        run = run_latency_workload(time_source="cts", invocations=50, seed=1)
        assert len(run.latencies_us) == 50
        assert all(lat > 0 for lat in run.latencies_us)
        assert run.mean_us > 0

    def test_ccs_counts_skewed_to_fast_replica(self):
        run = run_latency_workload(time_source="cts", invocations=100, seed=1)
        counts = sorted(run.ccs_transmitted.values(), reverse=True)
        # The fast replica (paper's n2) decides nearly every round.
        assert counts[0] >= 0.9 * sum(counts)
        assert sum(counts) == run.rounds

    def test_cts_adds_overhead(self):
        base = run_latency_workload(time_source="local", invocations=150, seed=2)
        with_cts = run_latency_workload(time_source="cts", invocations=150, seed=2)
        assert with_cts.mean_us > base.mean_us

    def test_baseline_has_no_ccs(self):
        run = run_latency_workload(time_source="local", invocations=20, seed=3)
        assert run.ccs_transmitted == {}
        assert run.rounds == 0


class TestSkewDriftWorkload:
    @pytest.fixture(scope="class")
    def result(self):
        return run_skew_drift_workload(rounds=120, seed=4)

    def test_round_counts(self, result):
        assert result.rounds == 120
        for series in result.series.values():
            assert len(series.history) == 120

    def test_synchronizer_rotates(self, result):
        counts = result.winner_counts()
        assert len(counts) >= 2  # more than one replica wins rounds
        assert sum(counts.values()) == 120

    def test_wire_economy(self, result):
        # Section 4.3: total CCS messages transmitted == rounds.
        assert result.total_transmitted == 120

    def test_intervals_in_expected_range(self, result):
        for series in result.series.values():
            for interval in series.physical_intervals():
                # busy loop 60-400us plus round latency, bounded sanity.
                assert 0 < interval < 5_000

    def test_group_clock_runs_slow(self, result):
        assert result.group_drift_ppm() < 0

    def test_offsets_trend_decreasing(self, result):
        for series in result.series.values():
            offsets = series.offsets()
            assert offsets[-1] <= offsets[0]

    def test_group_series_identical_across_replicas(self, result):
        groups = [
            [g for g, _, _ in s.history] for s in result.series.values()
        ]
        assert groups[0] == groups[1] == groups[2]


class TestFailoverWorkload:
    def test_cts_monotone(self):
        result = run_failover_workload(time_source="cts", seed=5)
        assert result.monotone
        assert not result.rolled_back

    def test_comparison_summary(self):
        summary = failover_comparison(range(10, 14), calls_each_side=3)
        assert summary["cts"]["non_monotone"] == 0
        assert summary["cts"]["worst_step_us"] > 0
        # The baseline misbehaves somewhere in the seed range.
        baseline = summary["primary-backup"]
        assert (
            baseline["rollbacks"] + baseline["fast_forwards"] > 0
            or baseline["worst_step_us"] <= 0
        )


class TestRecoveryWorkload:
    def test_integration_properties(self):
        result = run_recovery_workload(seed=6, calls_before=4, calls_after=4)
        assert result.monotone
        assert result.joiner_consistent
        assert result.recovery_adoptions >= 1
        assert result.joiner_count == result.member_count
        assert 0 < result.integration_time_s < 5.0


class TestThroughputWorkload:
    def test_point_counts(self):
        from repro.workloads import run_throughput_point

        point = run_throughput_point(
            time_source="local", offered_per_s=2_000, duration_s=0.1, seed=3
        )
        assert point.issued == pytest.approx(200, abs=2)
        assert point.completed == point.issued
        assert point.mean_latency_us > 0
        assert not point.saturated

    def test_cts_latency_grows_past_capacity(self):
        # Per-operation rounds (no coalescing): the round time caps the
        # sustainable rate, so pushing past it inflates latency.
        from repro.workloads import run_throughput_point

        calm = run_throughput_point(
            time_source="cts", offered_per_s=1_000, duration_s=0.1, seed=3,
            coalesce=False,
        )
        stormy = run_throughput_point(
            time_source="cts", offered_per_s=25_000, duration_s=0.1, seed=3,
            coalesce=False,
        )
        assert stormy.mean_latency_us > 5 * calm.mean_latency_us

    def test_coalescing_absorbs_the_same_storm(self):
        # Round amortization: the same offered rate that saturates the
        # per-op service is absorbed when concurrent operations share
        # rounds.
        from repro.workloads import run_throughput_point

        calm = run_throughput_point(
            time_source="cts", offered_per_s=1_000, duration_s=0.1, seed=3
        )
        stormy = run_throughput_point(
            time_source="cts", offered_per_s=25_000, duration_s=0.1, seed=3
        )
        assert not stormy.saturated
        assert stormy.mean_latency_us < 5 * calm.mean_latency_us

    def test_sweep_returns_all_rates(self):
        from repro.workloads import run_throughput_sweep

        sweep = run_throughput_sweep(
            [500, 1_000], time_source="local", duration_s=0.05, seed=4
        )
        assert sorted(sweep) == [500, 1_000]


class TestLoadgenChaos:
    def test_faults_on_point_stays_bounded(self):
        # A lossy wire plus a crash/recover cycle mid-window: the retry
        # path (same operation id, jittered backoff) must keep the
        # client-visible error rate bounded while throughput continues.
        from repro.workloads import run_loadgen_chaos

        result = run_loadgen_chaos(
            concurrency=8, duration_s=0.4, seed=5, loss_rate=0.02)
        assert result.mode == "chaos"
        assert result.completed > 0
        total = result.completed + result.errors
        assert result.errors / total <= 0.05
        assert result.ops_coalesced > 0
        assert result.rounds_completed > 0

    def test_chaos_point_lands_in_benchmark_file(self, tmp_path):
        from repro.workloads import record_benchmark, run_loadgen_chaos

        result = run_loadgen_chaos(
            concurrency=4, duration_s=0.2, seed=5, loss_rate=0.01)
        path = tmp_path / "bench.json"
        doc = record_benchmark(path, {result.mode: result})
        assert doc["runs"][-1]["modes"]["chaos"]["completed"] > 0
        assert "retries" in doc["runs"][-1]["modes"]["chaos"]


class TestLoadgenTailStats:
    def make_result(self, latencies):
        from repro.workloads.loadgen import LoadgenResult

        return LoadgenResult(mode="test", concurrency=1, duration_s=1.0,
                             completed=len(latencies),
                             latencies_us=list(latencies))

    def test_p999_sits_at_the_tail(self):
        result = self.make_result(list(range(1, 1001)))
        assert result.p99_us < result.p999_us <= 1000

    def test_latency_buckets_are_cumulative(self):
        from repro.workloads.loadgen import LATENCY_BUCKETS_US

        result = self.make_result([30, 60, 60, 450, 100_000])
        buckets = result.latency_buckets()
        assert [b[0] for b in buckets] == list(LATENCY_BUCKETS_US) + ["+Inf"]
        assert buckets[0] == [50, 1]
        assert buckets[1] == [100, 3]
        assert buckets[4] == [800, 4]
        assert buckets[-1] == ["+Inf", 5]
        counts = [b[1] for b in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing

    def test_to_dict_carries_tail_and_buckets(self):
        result = self.make_result([100, 200, 300])
        data = result.to_dict()
        assert data["p999_us"] == result.p999_us
        assert data["latency_buckets_us"] == result.latency_buckets()
