"""Baseline tests: NTP-style discipline reduces skew but cannot make
replica clock reads consistent (paper Section 1)."""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestNtpDaemon:
    def test_discipline_converges_clock_to_reference(self):
        bed = make_testbed(seed=120, epoch_spread_s=10.0)
        daemons = bed.install_ntp(poll_interval_s=0.5, gain=0.7)
        bed.start()
        bed.run(20.0)
        for node in bed.cluster.nodes.values():
            # Initially up to 10 s off; after discipline, within ~2 ms.
            assert abs(node.clock.true_offset_us()) < 2_000
        assert all(d.polls > 10 for d in daemons)

    def test_disciplined_clock_can_step_backwards(self):
        """Stepping is what makes OS clock discipline dangerous for
        replication: time can visibly roll back on one node."""
        bed = make_testbed(seed=121, epoch_spread_s=10.0)
        bed.install_ntp(poll_interval_s=0.5, gain=0.7)
        node = bed.cluster.node("n1")
        bed.start()
        rollback = False
        last = node.clock.read_us()
        for _ in range(100):
            bed.run(0.25)
            current = node.clock.read_us()
            if current < last:
                rollback = True
                break
            last = current
        assert rollback or node.clock.epoch_us < 1_000_000  # fast clocks step back

    def test_replicas_still_disagree_at_microsecond_scale(self):
        """Even clocks synchronized to well under a millisecond return
        different values for the same logical operation — the intrinsic
        event-triggered problem the CTS solves."""
        bed = make_testbed(seed=122, epoch_spread_s=10.0)
        bed.install_ntp(poll_interval_s=0.5, gain=0.7)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="ntp")
        client = bed.client("n0")
        bed.start()
        bed.run(20.0)  # let discipline converge first
        call_n(bed, client, "svc", "get_time", 5)
        bed.run(0.05)
        readings = [
            [v.micros for _, _, _, v in r.time_source.readings][-5:]
            for r in bed.replicas("svc").values()
        ]
        disagreements = sum(
            1
            for i in range(5)
            if len({readings[r][i] for r in range(3)}) > 1
        )
        assert disagreements >= 4  # nearly every read differs somewhere
