"""Baseline tests: primary/backup clock reading ([9], [3])."""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


def deploy_pb(seed, style="semi-active", epoch_spread_s=30.0):
    bed = make_testbed(seed=seed, epoch_spread_s=epoch_spread_s)
    bed.deploy(
        "svc", ClockApp, ["n1", "n2", "n3"],
        style=style, time_source="primary-backup",
    )
    client = bed.client("n0")
    bed.start(settle=0.3)
    return bed, client


class TestNormalOperation:
    def test_backups_adopt_conveyed_values(self):
        """During failure-free operation the approach IS consistent:
        backups use the primary's conveyed values."""
        bed, client = deploy_pb(seed=130)
        call_n(bed, client, "svc", "get_time", 6)
        bed.run(0.1)
        readings = [
            [v.micros for _, _, _, v in r.time_source.readings][-6:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]

    def test_primary_replies_use_its_own_clock(self):
        bed, client = deploy_pb(seed=131)
        primary = next(r for r in bed.replicas("svc").values() if r.is_primary)
        values = call_n(bed, client, "svc", "get_time", 3)
        # The reply values come straight from the primary's clock: they
        # track its disciplined reading, not any group agreement.
        offset = primary.node.clock.true_offset_us()
        now_us = int(bed.sim.now * 1e6)
        assert abs(values[-1] - (now_us + offset)) < 50_000

    def test_conveyance_counted(self):
        bed, client = deploy_pb(seed=132)
        call_n(bed, client, "svc", "get_time", 5)
        bed.run(0.1)
        primary = next(r for r in bed.replicas("svc").values() if r.is_primary)
        assert primary.time_source.conveyed_sent >= 5
        backups = [r for r in bed.replicas("svc").values() if not r.is_primary]
        assert all(b.time_source.conveyed_consumed >= 5 for b in backups)


class TestFailoverHazard:
    def test_rollback_or_fast_forward_occurs(self):
        """The Section 1 hazard: across seeds, at least one failover
        produces a clock step far outside the elapsed real time."""
        hazard = False
        for seed in range(133, 141):
            bed, client = deploy_pb(seed=seed)
            before = call_n(bed, client, "svc", "get_time", 3)
            t0 = bed.sim.now
            primary = next(
                nid for nid, r in bed.replicas("svc").items() if r.is_primary
            )
            bed.crash(primary)
            bed.run(0.6)
            after = call_n(bed, client, "svc", "get_time", 3)
            real_gap_us = (bed.sim.now - t0) * 1e6
            step = after[0] - before[-1]
            if step <= 0 or step > real_gap_us + 1_000_000:
                hazard = True
                break
        assert hazard, "expected roll-back or fast-forward within 8 seeds"
