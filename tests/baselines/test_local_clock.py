"""Baseline tests: raw local clocks exhibit the Figure 1 inconsistency."""

import pytest

from support import ClockApp, call_n, make_testbed  # noqa: E402 (tests/ on sys.path via conftest)


class TestLocalClockInconsistency:
    def test_replicas_disagree_on_clock_values(self):
        """The Figure 1 problem: the same logical operation returns
        different values at different replicas."""
        bed = make_testbed(seed=110, epoch_spread_s=10.0)
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 5)
        bed.run(0.05)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)
            for r in bed.replicas("svc").values()
        ]
        # With unsynchronized clocks the values differ by seconds.
        assert readings[0] != readings[1]
        assert readings[1] != readings[2]
        spread = max(r[0] for r in readings) - min(r[0] for r in readings)
        assert spread > 100_000  # > 100 ms disagreement

    def test_each_replica_is_locally_monotone(self):
        bed = make_testbed(seed=111)
        bed.deploy("svc", ClockApp, ["n1", "n2"], time_source="local")
        client = bed.client("n0")
        bed.start()
        call_n(bed, client, "svc", "get_time", 10)
        bed.run(0.05)
        for replica in bed.replicas("svc").values():
            values = [v.micros for _, _, _, v in replica.time_source.readings]
            assert values == sorted(values)

    def test_call_granularities(self):
        bed = make_testbed(seed=112)
        bed.deploy("svc", ClockApp, ["n1"], time_source="local")
        client = bed.client("n0")
        bed.start()
        secs = call_n(bed, client, "svc", "get_time_coarse", 2)
        ms = call_n(bed, client, "svc", "get_time_ms", 2)
        assert all(v % 1_000_000 == 0 for v in secs)
        assert all(v % 1_000 == 0 for v in ms)
