"""Shared helpers for Totem protocol tests."""

from typing import Dict, List, Optional, Tuple

from repro.sim import Cluster, ClusterConfig
from repro.totem import ConfigurationChange, TotemConfig, TotemProcessor


class Recorder:
    """Captures one processor's delivery and configuration history."""

    def __init__(self, processor: TotemProcessor):
        self.processor = processor
        #: [(seq, sender, payload)] in delivery order.
        self.delivered: List[Tuple[int, str, object]] = []
        #: Configuration changes in delivery order.
        self.configs: List[ConfigurationChange] = []
        #: Interleaved full history (for order-across-kinds assertions).
        self.history: List[object] = []
        processor.on_deliver = self._on_deliver
        processor.on_config_change = self._on_config

    def _on_deliver(self, msg):
        entry = (msg.seq, msg.sender, msg.payload)
        self.delivered.append(entry)
        self.history.append(("msg",) + entry)

    def _on_config(self, change):
        self.configs.append(change)
        self.history.append(("config", change.ring_id, change.members))

    @property
    def payloads(self) -> List[object]:
        return [payload for _, _, payload in self.delivered]


class TotemHarness:
    """A cluster with one Totem processor per node, all recording."""

    def __init__(
        self,
        num_nodes: int = 4,
        *,
        seed: int = 0,
        loss_rate: float = 0.0,
        totem_config: Optional[TotemConfig] = None,
        start: bool = True,
    ):
        config = ClusterConfig(num_nodes=num_nodes, loss_rate=loss_rate)
        self.cluster = Cluster(config, seed=seed)
        self.sim = self.cluster.sim
        self.totem_config = totem_config or TotemConfig()
        static = self.cluster.node_ids
        self.processors: Dict[str, TotemProcessor] = {}
        self.recorders: Dict[str, Recorder] = {}
        for node_id in static:
            proc = TotemProcessor(
                self.cluster.node(node_id),
                self.totem_config,
                static_membership=static,
            )
            self.processors[node_id] = proc
            self.recorders[node_id] = Recorder(proc)
        if start:
            for proc in self.processors.values():
                proc.start()

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def run_until_operational(self, node_ids=None, timeout: float = 1.0) -> None:
        """Run until the given processors (default: all on live nodes) are
        operational, or fail the test after ``timeout`` simulated seconds."""
        node_ids = list(node_ids or self.processors)
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if all(self.processors[nid].is_operational for nid in node_ids):
                return
            self.sim.run(until=self.sim.now + 0.001)
        states = {nid: self.processors[nid].state for nid in node_ids}
        raise AssertionError(f"processors not operational after {timeout}s: {states}")

    def restart_processor(self, node_id: str) -> TotemProcessor:
        """Replace a crashed node's processor after Node.recover() —
        volatile protocol state does not survive a fail-stop crash."""
        node = self.cluster.node(node_id)
        proc = TotemProcessor(
            node, self.totem_config, static_membership=self.cluster.node_ids
        )
        self.processors[node_id] = proc
        self.recorders[node_id] = Recorder(proc)
        proc.start()
        return proc
