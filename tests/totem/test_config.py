"""Unit tests for Totem configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.totem import TotemConfig


class TestValidation:
    def test_default_config_is_valid(self):
        TotemConfig().validate()

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="window_size"):
            TotemConfig(window_size=0).validate()

    def test_token_loss_must_exceed_retransmit(self):
        with pytest.raises(ConfigurationError, match="token_loss"):
            TotemConfig(
                token_loss_timeout_s=1e-3, token_retransmit_timeout_s=2e-3
            ).validate()

    def test_fail_ticks_positive(self):
        with pytest.raises(ConfigurationError, match="fail_after_join_ticks"):
            TotemConfig(fail_after_join_ticks=0).validate()

    def test_negative_durations_rejected(self):
        with pytest.raises(ConfigurationError, match="join_interval_s"):
            TotemConfig(join_interval_s=-1.0).validate()

    def test_calibration_matches_paper(self):
        """Token-passing time: processing + propagation + transmission
        should land near the paper's measured 51 us peak."""
        config = TotemConfig()
        # 64-byte token at 100 Mbit/s ≈ 5 us; propagation 20 us; jitter
        # mean 5 us; processing 15 us -> ≈ 45-50 us per hop.
        hop = config.token_processing_s + 20e-6 + 5e-6 + 64 * 8 / 100e6
        assert 40e-6 < hop < 60e-6
