"""Tests for the TotemBus pub/sub facade."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Cluster, ClusterConfig
from repro.totem import TotemBus


@pytest.fixture
def bus():
    cluster = Cluster(ClusterConfig(num_nodes=4), seed=3)
    bus = TotemBus(cluster)
    bus.start()
    bus.wait_operational()
    return bus


class TestPubSub:
    def test_publish_reaches_all_nodes_in_order(self, bus):
        for i in range(12):
            bus.publish(f"n{i % 4}", i)
        bus.cluster.run(0.1)
        orders = bus.orders()
        values = list(orders.values())
        assert all(order == values[0] for order in values)
        assert sorted(values[0]) == list(range(12))

    def test_subscriber_callbacks_fire(self, bus):
        seen = []
        bus.subscribe("n2", lambda sender, payload: seen.append((sender, payload)))
        bus.publish("n1", "hello")
        bus.cluster.run(0.1)
        assert seen == [("n1", "hello")]

    def test_membership_callbacks_fire_on_crash(self, bus):
        changes = []
        bus.subscribe_membership("n0", changes.append)
        bus.cluster.node("n3").crash()
        bus.cluster.run(0.5)
        assert changes
        assert "n3" in changes[-1].departed

    def test_delivery_log_includes_sequence_numbers(self, bus):
        bus.publish("n0", "a")
        bus.publish("n0", "b")
        bus.cluster.run(0.1)
        log = bus.delivered["n1"]
        seqs = [seq for seq, _, _ in log]
        assert seqs == sorted(seqs)

    def test_start_idempotent(self, bus):
        bus.start()  # second call is a no-op

    def test_wait_operational_timeout(self):
        cluster = Cluster(ClusterConfig(num_nodes=2), seed=4)
        bus = TotemBus(cluster)
        # Never started: cannot become operational.
        with pytest.raises(ConfigurationError, match="failed to become"):
            bus.wait_operational(timeout=0.05)
