"""Tests for Totem membership: crashes, joins, partitions, recovery."""

import pytest

from repro.totem import LostMessage, RegularMessage

from .helpers import TotemHarness


class TestCrash:
    def test_survivors_reform_ring(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n2").crash()
        survivors = ["n0", "n1", "n3"]
        harness.run(0.1)
        harness.run_until_operational(survivors)
        for nid in survivors:
            assert harness.processors[nid].members == ("n0", "n1", "n3")

    def test_departure_config_change(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n2").crash()
        harness.run(0.2)
        for nid in ["n0", "n1", "n3"]:
            last = harness.recorders[nid].configs[-1]
            assert last.departed == ("n2",)
            assert last.joined == ()
            assert last.is_primary  # 3 of 4 is a majority

    def test_messages_continue_after_crash(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n3").crash()
        harness.run(0.2)
        harness.run_until_operational(["n0", "n1", "n2"])
        for i in range(10):
            harness.processors["n0"].mcast(i)
        harness.run(0.1)
        for nid in ["n0", "n1", "n2"]:
            assert harness.recorders[nid].payloads[-10:] == list(range(10))

    def test_in_flight_messages_consistent_across_crash(self):
        """Messages multicast around the moment of a crash must be
        delivered to either all survivors or none (virtual synchrony)."""
        harness = TotemHarness(4, seed=2)
        harness.run_until_operational()
        for i in range(20):
            harness.processors["n1"].mcast(f"pre{i}")
        # Crash mid-burst: some messages are in flight.
        harness.run(0.0002)
        harness.cluster.node("n1").crash()
        harness.run(0.3)
        orders = [tuple(harness.recorders[nid].payloads) for nid in ["n0", "n2", "n3"]]
        assert all(order == orders[0] for order in orders)

    def test_double_crash_leaves_two_member_ring(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n1").crash()
        harness.cluster.node("n2").crash()
        harness.run(0.3)
        harness.run_until_operational(["n0", "n3"])
        for nid in ["n0", "n3"]:
            assert harness.processors[nid].members == ("n0", "n3")
            # 2 of 4 is not a strict majority.
            assert not harness.recorders[nid].configs[-1].is_primary


class TestJoin:
    def test_late_joiner_merges(self):
        harness = TotemHarness(4, start=False)
        for nid in ["n0", "n1", "n2"]:
            harness.processors[nid].start()
        harness.run_until_operational(["n0", "n1", "n2"])
        assert harness.processors["n0"].members == ("n0", "n1", "n2")
        harness.processors["n3"].start()
        harness.run(0.2)
        harness.run_until_operational()
        for proc in harness.processors.values():
            assert proc.members == ("n0", "n1", "n2", "n3")

    def test_join_config_change_reports_joiner(self):
        harness = TotemHarness(3, start=False)
        for nid in ["n0", "n1"]:
            harness.processors[nid].start()
        harness.run_until_operational(["n0", "n1"])
        harness.processors["n2"].start()
        harness.run(0.2)
        last = harness.recorders["n0"].configs[-1]
        assert last.joined == ("n2",)
        assert last.departed == ()

    def test_crashed_node_rejoins_after_recovery(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n2").crash()
        harness.run(0.3)
        harness.cluster.node("n2").recover()
        harness.restart_processor("n2")
        harness.run(0.3)
        harness.run_until_operational()
        for proc in harness.processors.values():
            assert proc.members == ("n0", "n1", "n2", "n3")

    def test_messages_flow_to_rejoined_node(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.node("n2").crash()
        harness.run(0.3)
        harness.cluster.node("n2").recover()
        harness.restart_processor("n2")
        harness.run(0.3)
        harness.run_until_operational()
        harness.processors["n0"].mcast("hello-rejoined")
        harness.run(0.1)
        assert "hello-rejoined" in harness.recorders["n2"].payloads


class TestPartition:
    def test_majority_side_is_primary(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        harness.run(0.3)
        for nid in ["n0", "n1", "n2"]:
            last = harness.recorders[nid].configs[-1]
            assert set(last.members) == {"n0", "n1", "n2"}
            assert last.is_primary
        minority = harness.recorders["n3"].configs[-1]
        assert set(minority.members) == {"n3"}
        assert not minority.is_primary

    def test_partition_heal_remerges(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.network.partition({"n0", "n1"}, {"n2", "n3"})
        harness.run(0.3)
        harness.cluster.network.heal()
        harness.run(0.5)
        harness.run_until_operational()
        for proc in harness.processors.values():
            assert proc.members == ("n0", "n1", "n2", "n3")
        for recorder in harness.recorders.values():
            assert recorder.configs[-1].is_primary

    def test_messages_during_partition_stay_in_component(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        harness.cluster.network.partition({"n0", "n1", "n2"}, {"n3"})
        harness.run(0.3)
        harness.processors["n0"].mcast("majority-only")
        harness.run(0.1)
        assert "majority-only" in harness.recorders["n1"].payloads
        assert "majority-only" not in harness.recorders["n3"].payloads


class TestRecoveryDetails:
    def test_messages_before_config_change_in_history(self):
        """Old-ring messages are delivered before the configuration
        change event at every survivor (extended virtual synchrony)."""
        harness = TotemHarness(4, seed=5)
        harness.run_until_operational()
        for i in range(10):
            harness.processors["n0"].mcast(f"old{i}")
        harness.run(0.0003)
        harness.cluster.node("n0").crash()
        harness.run(0.4)
        for nid in ["n1", "n2", "n3"]:
            history = harness.recorders[nid].history
            kinds = [entry[0] for entry in history]
            # After the second config entry (the post-crash one), no 'msg'
            # entries from the old ring may appear before it.
            config_indices = [i for i, k in enumerate(kinds) if k == "config"]
            assert len(config_indices) >= 2
            old_msgs = [i for i, e in enumerate(history) if e[0] == "msg"]
            if old_msgs:
                assert max(old_msgs) != config_indices[-1]  # sanity

    def test_survivor_histories_identical(self):
        harness = TotemHarness(4, seed=8)
        harness.run_until_operational()
        for i in range(15):
            harness.processors["n2"].mcast(i)
        harness.run(0.0004)
        harness.cluster.node("n2").crash()
        harness.run(0.4)
        payload_orders = {
            nid: tuple(harness.recorders[nid].payloads) for nid in ["n0", "n1", "n3"]
        }
        values = list(payload_orders.values())
        assert values[0] == values[1] == values[2]

    def test_tombstone_fills_irrecoverable_gap(self):
        """White-box: a sequence number held by no survivor is tombstoned
        so delivery proceeds; the tombstone is never delivered."""
        harness = TotemHarness(3, seed=1)
        harness.run_until_operational()
        # n0 multicasts two messages; surgically remove seq from n1/n2 to
        # emulate the frames being lost, and give n1 the later one only.
        harness.processors["n0"].mcast("will-be-lost")
        harness.processors["n0"].mcast("survives")
        harness.run(0.05)  # everything delivered normally first
        # Build the damaged state by hand: pretend n1 holds seq+1 but not
        # seq, and n0 (the only holder) crashes.
        proc1 = harness.processors["n1"]
        base = proc1.delivered_seq
        ring_id = proc1.ring.ring_id
        msg_hi = RegularMessage(ring_id, base + 2, "n0", "late-survivor")
        proc1._store_message(msg_hi)
        harness.cluster.node("n0").crash()
        harness.run(0.5)
        harness.run_until_operational(["n1", "n2"])
        # Both survivors delivered 'late-survivor' and skipped the gap.
        for nid in ["n1", "n2"]:
            assert "late-survivor" in harness.recorders[nid].payloads
            assert not any(
                isinstance(p, LostMessage) for p in harness.recorders[nid].payloads
            )
        assert (
            harness.recorders["n1"].payloads == harness.recorders["n2"].payloads
        )


class TestTokenLossRobustness:
    def test_heavy_token_loss_still_converges(self):
        harness = TotemHarness(4, loss_rate=0.08, seed=4)
        harness.run_until_operational(timeout=3.0)
        for i in range(20):
            harness.processors["n0"].mcast(i)
        harness.run(1.0)
        final = [tuple(r.payloads) for r in harness.recorders.values()]
        assert all(order == final[0] for order in final)
        assert sorted(final[0]) == list(range(20))
