"""Robustness under aggressive (false-positive-prone) failure detection.

With a token-loss timeout close to the rotation time, transient jitter
causes spurious membership churn — rings reform even though nobody
failed.  Safety must hold regardless: total order, no duplicates, no
losses among live processors.
"""

import pytest

from repro.totem import TotemConfig

from .helpers import TotemHarness


def aggressive_config():
    return TotemConfig(
        token_loss_timeout_s=0.26e-3,      # barely above one rotation
        token_retransmit_timeout_s=0.08e-3,
        join_interval_s=0.4e-3,
    )


class TestChurnSafety:
    def test_total_order_survives_spurious_reforms(self):
        harness = TotemHarness(4, seed=21, totem_config=aggressive_config())
        harness.run_until_operational(timeout=3.0)
        for i in range(40):
            harness.processors[f"n{i % 4}"].mcast(i)
            harness.run(0.001)
        harness.run(1.0)
        orders = [tuple(r.payloads) for r in harness.recorders.values()]
        assert all(order == orders[0] for order in orders)
        assert sorted(orders[0]) == list(range(40))

    def test_churn_actually_happened(self):
        """Sanity: the aggressive config really does cause reforms —
        otherwise the safety test above is vacuous."""
        harness = TotemHarness(4, seed=21, totem_config=aggressive_config())
        harness.run_until_operational(timeout=3.0)
        harness.run(1.0)
        reforms = max(
            p.stats.membership_changes for p in harness.processors.values()
        )
        assert reforms >= 2  # initial ring + at least one spurious reform

    def test_no_duplicate_deliveries_under_churn(self):
        harness = TotemHarness(4, seed=22, totem_config=aggressive_config())
        harness.run_until_operational(timeout=3.0)
        for i in range(30):
            harness.processors["n1"].mcast(i)
            harness.run(0.0008)
        harness.run(1.0)
        for recorder in harness.recorders.values():
            payloads = recorder.payloads
            assert len(payloads) == len(set(payloads))

    def test_cts_stays_consistent_under_churn(self):
        """End-to-end: the group clock's guarantees hold even while the
        ring churns under a hair-trigger failure detector."""
        from support import ClockApp, call_n, make_testbed

        bed = make_testbed(seed=23, totem_config=aggressive_config())
        bed.deploy("svc", ClockApp, ["n1", "n2", "n3"], time_source="cts")
        client = bed.client("n0")
        bed.start(settle=0.5)
        values = call_n(bed, client, "svc", "get_time", 10)
        assert all(b > a for a, b in zip(values, values[1:]))
        bed.run(0.2)
        readings = [
            tuple(v.micros for _, _, _, v in r.time_source.readings)[-10:]
            for r in bed.replicas("svc").values()
        ]
        assert readings[0] == readings[1] == readings[2]
