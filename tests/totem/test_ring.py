"""Tests for Totem regular operation: ring formation, total order,
reliability under loss, flow control and statistics."""

import pytest

from repro.totem import TotemConfig

from .helpers import TotemHarness


class TestRingFormation:
    def test_all_processors_become_operational(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        rings = {p.ring.ring_id for p in harness.processors.values()}
        assert len(rings) == 1
        for proc in harness.processors.values():
            assert proc.members == ("n0", "n1", "n2", "n3")

    def test_initial_config_change_delivered(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        for recorder in harness.recorders.values():
            assert len(recorder.configs) >= 1
            first = recorder.configs[0]
            assert set(first.joined) == {"n0", "n1", "n2", "n3"}
            assert first.departed == ()
            assert first.is_primary

    def test_singleton_ring_forms(self):
        harness = TotemHarness(1)
        harness.run_until_operational()
        proc = harness.processors["n0"]
        assert proc.members == ("n0",)
        assert harness.recorders["n0"].configs[0].is_primary

    def test_two_node_ring(self):
        harness = TotemHarness(2)
        harness.run_until_operational()
        for proc in harness.processors.values():
            assert proc.members == ("n0", "n1")


class TestTotalOrder:
    def test_single_sender_fifo(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        for i in range(20):
            harness.processors["n1"].mcast(f"m{i}")
        harness.run(0.05)
        expected = [f"m{i}" for i in range(20)]
        for recorder in harness.recorders.values():
            assert recorder.payloads == expected

    def test_concurrent_senders_same_order_everywhere(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        for i in range(10):
            for nid in harness.processors:
                harness.processors[nid].mcast(f"{nid}:{i}")
        harness.run(0.1)
        orders = [tuple(r.payloads) for r in harness.recorders.values()]
        assert len(orders[0]) == 40
        assert all(order == orders[0] for order in orders)

    def test_sender_receives_own_messages(self):
        harness = TotemHarness(3)
        harness.run_until_operational()
        harness.processors["n0"].mcast("self-delivery")
        harness.run(0.05)
        assert "self-delivery" in harness.recorders["n0"].payloads

    def test_sequence_numbers_are_contiguous(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        for i in range(15):
            harness.processors[f"n{i % 4}"].mcast(i)
        harness.run(0.1)
        for recorder in harness.recorders.values():
            seqs = [seq for seq, _, _ in recorder.delivered]
            assert seqs == list(range(1, 16))

    def test_burst_beyond_window_is_delivered(self):
        config = TotemConfig(window_size=4)
        harness = TotemHarness(3, totem_config=config)
        harness.run_until_operational()
        for i in range(50):
            harness.processors["n0"].mcast(i)
        harness.run(0.2)
        for recorder in harness.recorders.values():
            assert recorder.payloads == list(range(50))

    def test_mcast_before_operational_is_queued(self):
        harness = TotemHarness(3)
        harness.processors["n0"].mcast("early")
        harness.run_until_operational()
        harness.run(0.05)
        for recorder in harness.recorders.values():
            assert recorder.payloads == ["early"]


class TestReliability:
    def test_all_delivered_under_message_loss(self):
        harness = TotemHarness(4, loss_rate=0.03, seed=7)
        harness.run_until_operational(timeout=2.0)
        for i in range(30):
            harness.processors[f"n{i % 4}"].mcast(i)
        harness.run(0.5)
        orders = [tuple(r.payloads) for r in harness.recorders.values()]
        assert sorted(orders[0]) == list(range(30))
        assert all(order == orders[0] for order in orders)

    def test_retransmissions_occur_under_loss(self):
        harness = TotemHarness(4, loss_rate=0.05, seed=3)
        harness.run_until_operational(timeout=2.0)
        for i in range(50):
            harness.processors["n0"].mcast(i)
        harness.run(0.5)
        total_retrans = sum(
            p.stats.retransmissions for p in harness.processors.values()
        )
        assert total_retrans > 0

    def test_no_duplicate_deliveries_under_loss(self):
        harness = TotemHarness(4, loss_rate=0.05, seed=11)
        harness.run_until_operational(timeout=2.0)
        for i in range(30):
            harness.processors["n1"].mcast(i)
        harness.run(0.5)
        for recorder in harness.recorders.values():
            assert len(recorder.payloads) == len(set(recorder.payloads))


class TestCancelPending:
    def test_cancel_removes_queued_payload(self):
        harness = TotemHarness(3, start=False)
        proc = harness.processors["n0"]
        proc.mcast("keep")
        proc.mcast("drop")
        cancelled = proc.cancel_pending(lambda p: p == "drop")
        assert cancelled == 1
        assert proc.stats.sends_cancelled == 1
        for p in harness.processors.values():
            p.start()
        harness.run_until_operational()
        harness.run(0.05)
        for recorder in harness.recorders.values():
            assert recorder.payloads == ["keep"]

    def test_cancel_does_not_affect_transmitted(self):
        harness = TotemHarness(3)
        harness.run_until_operational()
        harness.processors["n0"].mcast("sent")
        harness.run(0.05)  # transmitted and delivered
        assert harness.processors["n0"].cancel_pending(lambda p: True) == 0
        assert "sent" in harness.recorders["n1"].payloads


class TestLatencyShape:
    def test_mcast_latency_is_about_one_rotation(self):
        """An mcast waits for the token (≤1 rotation) and then one
        multicast hop: total should be on the order of 100s of us."""
        harness = TotemHarness(4)
        harness.run_until_operational()
        sim = harness.sim
        deliveries = []
        harness.processors["n2"].on_deliver = lambda msg: deliveries.append(sim.now)
        start = sim.now
        harness.processors["n1"].mcast("timed")
        harness.run(0.05)
        latency = deliveries[0] - start
        assert 20e-6 < latency < 1.5e-3

    def test_token_keeps_rotating_when_idle(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        before = harness.processors["n0"].stats.tokens_forwarded
        harness.run(0.01)
        after = harness.processors["n0"].stats.tokens_forwarded
        assert after > before


class TestStats:
    def test_message_counters(self):
        harness = TotemHarness(3)
        harness.run_until_operational()
        harness.processors["n0"].mcast("a")
        harness.processors["n0"].mcast("b")
        harness.run(0.05)
        assert harness.processors["n0"].stats.messages_multicast == 2
        for p in harness.processors.values():
            assert p.stats.messages_delivered >= 2
