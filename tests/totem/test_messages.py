"""Unit tests for Totem wire message types."""

import pytest

from repro.totem import (
    CommitMemberInfo,
    CommitToken,
    ConfigurationChange,
    JoinMessage,
    LostMessage,
    RegularMessage,
    RegularToken,
    RingId,
)


class TestRingId:
    def test_ordering_by_seq_then_rep(self):
        assert RingId(1, "n0") < RingId(2, "n0")
        assert RingId(2, "n0") < RingId(2, "n1")

    def test_distinct_reps_distinct_ids(self):
        assert RingId(3, "n0") != RingId(3, "n1")

    def test_str(self):
        assert "3" in str(RingId(3, "n1")) and "n1" in str(RingId(3, "n1"))


class TestRegularMessage:
    def test_wire_size_includes_payload(self):
        class SizedPayload:
            def wire_size(self):
                return 100

        msg = RegularMessage(RingId(1, "n0"), 5, "n1", SizedPayload())
        assert msg.wire_size() == 148

    def test_default_payload_size(self):
        msg = RegularMessage(RingId(1, "n0"), 5, "n1", "plain string")
        assert msg.wire_size() == 48 + 64

    def test_immutability(self):
        msg = RegularMessage(RingId(1, "n0"), 5, "n1", "x")
        with pytest.raises(AttributeError):
            msg.seq = 6


class TestRegularToken:
    def test_wire_size_grows_with_rtr(self):
        small = RegularToken(RingId(1, "n0"), 1, 0, 0, None)
        big = RegularToken(RingId(1, "n0"), 1, 0, 0, None, rtr=(1, 2, 3))
        assert big.wire_size() > small.wire_size()


class TestCommitToken:
    def test_next_member_wraps(self):
        token = CommitToken(RingId(2, "n0"), ("n0", "n1", "n2"))
        assert token.next_member("n0") == "n1"
        assert token.next_member("n2") == "n0"

    def test_copy_is_deep_for_info_and_rtr(self):
        token = CommitToken(RingId(2, "n0"), ("n0", "n1"))
        token.info["n0"] = CommitMemberInfo(high_seq=5)
        token.rtr.append((RingId(1, "n0"), 3))
        clone = token.copy()
        clone.info["n0"].high_seq = 99
        clone.rtr.clear()
        assert token.info["n0"].high_seq == 5
        assert token.rtr == [(RingId(1, "n0"), 3)]


class TestLostMessage:
    def test_equality_and_hash(self):
        assert LostMessage() == LostMessage()
        assert hash(LostMessage()) == hash(LostMessage())
        assert LostMessage() != "anything else"

    def test_zero_wire_size(self):
        assert LostMessage().wire_size() == 0


class TestConfigurationChange:
    def test_str_mentions_primary(self):
        change = ConfigurationChange(
            RingId(4, "n0"), ("n0", "n1"), ("n1",), ("n2",), True
        )
        text = str(change)
        assert "primary" in text
        assert "n2" in text

    def test_join_message_is_frozen(self):
        join = JoinMessage("n0", frozenset({"n0"}), frozenset(), 0)
        with pytest.raises(AttributeError):
            join.ring_seq = 2
