"""Tests for Totem safe delivery (the stronger delivery guarantee)."""

import pytest

from .helpers import TotemHarness


class SafeRecorder:
    def __init__(self, harness):
        self.agreed = {nid: [] for nid in harness.processors}
        self.safe = {nid: [] for nid in harness.processors}
        for nid, proc in harness.processors.items():
            recorder = harness.recorders[nid]
            # Keep the existing agreed recorder, add safe tracking.
            self.agreed[nid] = recorder.payloads
            proc.on_safe_deliver = (
                lambda msg, _n=nid: self.safe[_n].append(msg.payload)
            )


class TestSafeDelivery:
    def test_safe_is_prefix_of_agreed(self):
        harness = TotemHarness(4)
        harness.run_until_operational()
        tracker = SafeRecorder(harness)
        for i in range(20):
            harness.processors[f"n{i % 4}"].mcast(i)
        harness.run(0.05)
        for nid in harness.processors:
            agreed = harness.recorders[nid].payloads
            safe = tracker.safe[nid]
            assert safe == agreed[: len(safe)]

    def test_safe_eventually_catches_up(self):
        harness = TotemHarness(3)
        harness.run_until_operational()
        tracker = SafeRecorder(harness)
        for i in range(10):
            harness.processors["n0"].mcast(i)
        # Safe delivery trails by rotations; give it a few.
        harness.run(0.1)
        for nid in harness.processors:
            assert tracker.safe[nid] == list(range(10))

    def test_safe_trails_agreed(self):
        """Right after agreed delivery, safe delivery has not happened
        yet (it needs the aru to pass on consecutive rotations)."""
        harness = TotemHarness(4)
        harness.run_until_operational()
        tracker = SafeRecorder(harness)
        sim = harness.sim
        agreed_at = {}
        safe_at = {}
        proc = harness.processors["n2"]
        old_deliver = proc.on_deliver
        proc.on_deliver = lambda msg: (
            agreed_at.setdefault(msg.seq, sim.now),
            old_deliver(msg),
        )
        old_safe = proc.on_safe_deliver
        proc.on_safe_deliver = lambda msg: (
            safe_at.setdefault(msg.seq, sim.now),
            old_safe(msg),
        )
        harness.processors["n1"].mcast("x")
        harness.run(0.05)
        seq = next(iter(agreed_at))
        assert safe_at[seq] > agreed_at[seq]
        # But within a few token rotations (~200 us each).
        assert safe_at[seq] - agreed_at[seq] < 2e-3

    def test_safe_order_identical_across_processors(self):
        harness = TotemHarness(4, seed=9)
        harness.run_until_operational()
        tracker = SafeRecorder(harness)
        for i in range(15):
            harness.processors[f"n{i % 4}"].mcast(i)
        harness.run(0.1)
        orders = [tuple(tracker.safe[nid]) for nid in harness.processors]
        assert all(order == orders[0] for order in orders)


class TestTokenTimeRecording:
    def test_disabled_by_default(self):
        harness = TotemHarness(3)
        harness.run_until_operational()
        harness.run(0.02)
        assert harness.processors["n0"].token_arrival_times == []

    def test_records_when_enabled(self):
        from repro.totem import TotemConfig

        harness = TotemHarness(4, totem_config=TotemConfig(record_token_times=True))
        harness.run_until_operational()
        harness.run(0.02)
        times = harness.processors["n1"].token_arrival_times
        assert len(times) > 10
        intervals = [b - a for a, b in zip(times, times[1:])]
        # Rotation of a 4-node ring: ~200 us with the calibrated model.
        typical = sorted(intervals)[len(intervals) // 2]
        assert 100e-6 < typical < 400e-6
